package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"smash/internal/trace"
)

// randomEvents fabricates a small random event stream: a handful of
// servers, clients and files spread over `spreadStrides` strides, with a
// bounded amount of out-of-order jitter so the watermark/lateness paths
// get exercised.
func randomEvents(rng *rand.Rand, n int, stride time.Duration, spreadStrides int, jitter time.Duration) []trace.Request {
	base := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	events := make([]trace.Request, 0, n)
	cursor := time.Duration(0)
	span := stride * time.Duration(spreadStrides)
	for i := 0; i < n; i++ {
		// Mostly-increasing times with random negative jitter.
		cursor += time.Duration(rng.Int63n(int64(span)/int64(n) + 1))
		t := base.Add(cursor - time.Duration(rng.Int63n(int64(jitter)+1)))
		if t.Before(base) || i == 0 {
			// The first event anchors the window origin; keeping it (and
			// every jittered event) at or after base means no event ever
			// precedes the first window, so scratch comparisons stay
			// exact. (Events before the origin are dropped by design.)
			t = base
		}
		r := trace.Request{
			Time:     t,
			Client:   fmt.Sprintf("c%d", rng.Intn(6)),
			Host:     fmt.Sprintf("s%d.com", rng.Intn(8)),
			ServerIP: fmt.Sprintf("9.9.9.%d", rng.Intn(4)),
			Path:     fmt.Sprintf("/f%d.php", rng.Intn(5)),
			Status:   200,
		}
		if rng.Intn(4) == 0 {
			r.Query = "id=1&p=2"
		}
		if rng.Intn(5) == 0 {
			r.Referrer = fmt.Sprintf("ref%d.com", rng.Intn(3))
		}
		events = append(events, r)
	}
	return events
}

// windowFingerprints collects the (Seq, Start, End, Requests, raw-index
// fingerprint) tuple of every window, plus the delta stream.
func windowFingerprints(windows []WindowResult) []string {
	var out []string
	for _, w := range windows {
		fp := ""
		if w.Report != nil && w.Report.RawIndex != nil {
			fp = w.Report.RawIndex.Fingerprint()
		}
		out = append(out, fmt.Sprintf("w%d [%s,%s) req=%d\n%s", w.Seq, w.Start, w.End, w.Requests, fp))
	}
	return out
}

// TestIncrementalMatchesLegacyWindowing drives random stride/window/
// lateness combinations through the incremental stride-fragment ring and
// through the legacy per-window fragment path, and requires byte-identical
// output: same windows, same per-window raw index (fingerprinted), same
// lineage deltas, same late-drop accounting. Non-divisible strides (where
// the engine itself falls back to the legacy path) ride along to keep the
// fallback honest.
func TestIncrementalMatchesLegacyWindowing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 12; trial++ {
		stride := time.Duration(1+rng.Intn(4)) * 10 * time.Minute
		var window time.Duration
		if trial%4 == 3 {
			// Non-divisible: window = k*stride + stride/2 (falls back).
			window = stride*time.Duration(1+rng.Intn(3)) + stride/2
		} else {
			window = stride * time.Duration(1+rng.Intn(4))
		}
		watermark := time.Duration(rng.Intn(3)) * 7 * time.Minute
		jitter := time.Duration(rng.Intn(3)) * 11 * time.Minute
		events := randomEvents(rng, 120+rng.Intn(200), stride, 6+rng.Intn(6), jitter)
		name := fmt.Sprintf("trial%d_w%v_s%v_wm%v_j%v", trial, window, stride, watermark, jitter)

		t.Run(name, func(t *testing.T) {
			run := func(legacy bool, shards, workers int) ([]WindowResult, *Engine) {
				eng, err := New(Config{
					Window: window, Stride: stride, Watermark: watermark,
					Shards: shards, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				eng.forceLegacy = legacy
				return collect(t, eng, &SliceSource{Requests: events}), eng
			}
			gotW, gotE := run(false, 1+rng.Intn(4), 1+rng.Intn(3))
			wantW, wantE := run(true, 1+rng.Intn(4), 1+rng.Intn(3))

			if gotE.Stats() != wantE.Stats() {
				t.Errorf("stats diverge: incremental %+v, legacy %+v", gotE.Stats(), wantE.Stats())
			}
			got, want := windowFingerprints(gotW), windowFingerprints(wantW)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window streams diverge:\nincremental:\n%v\nlegacy:\n%v", got, want)
			}
			if !reflect.DeepEqual(deltaSummary(gotW), deltaSummary(wantW)) {
				t.Errorf("delta streams diverge")
			}
		})
	}
}

// TestIncrementalIndexMatchesScratchBuild is the direct "rolling merged
// index equals BuildIndex of the window's events" assertion: with a
// watermark generous enough that nothing is dropped, every emitted
// window's raw index must fingerprint-equal an index built from scratch
// over exactly the events in [Start, End).
func TestIncrementalIndexMatchesScratchBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		stride := time.Duration(1+rng.Intn(3)) * 15 * time.Minute
		k := 1 + rng.Intn(4)
		window := stride * time.Duration(k)
		jitter := time.Duration(rng.Intn(2)) * 9 * time.Minute
		events := randomEvents(rng, 100+rng.Intn(150), stride, 5+rng.Intn(5), jitter)

		t.Run(fmt.Sprintf("trial%d_k%d", trial, k), func(t *testing.T) {
			eng, err := New(Config{
				Window: window, Stride: stride,
				// Larger than any jitter: no event is ever late-dropped,
				// so window contents are exactly the time-range slice.
				Watermark: 24 * time.Hour,
				Shards:    1 + rng.Intn(4),
			})
			if err != nil {
				t.Fatal(err)
			}
			windows := collect(t, eng, &SliceSource{Requests: events})
			if eng.Stats().Late != 0 {
				t.Fatalf("unexpected late drops: %+v", eng.Stats())
			}
			if len(windows) == 0 {
				t.Fatal("no windows emitted")
			}
			for _, w := range windows {
				var scratch trace.Trace
				for _, r := range events {
					if !r.Time.Before(w.Start) && r.Time.Before(w.End) {
						scratch.Requests = append(scratch.Requests, r)
					}
				}
				if w.Requests != len(scratch.Requests) {
					t.Fatalf("window %d holds %d requests, scratch slice has %d",
						w.Seq, w.Requests, len(scratch.Requests))
				}
				if w.Report == nil {
					continue // empty window
				}
				want := trace.BuildIndex(&scratch).Fingerprint()
				if got := w.Report.RawIndex.Fingerprint(); got != want {
					t.Errorf("window %d: rolling index diverges from scratch build:\n got: %s\nwant: %s",
						w.Seq, got, want)
				}
			}
		})
	}
}

// TestSymbolRotationInvisible runs the same stream with aggressive
// symbol-table rotation (every window) and with rotation disabled, on both
// the ring and the legacy path, and requires identical output — the id
// hygiene invariant: epochs change id assignment, never reports.
func TestSymbolRotationInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	stride := 20 * time.Minute
	events := randomEvents(rng, 260, stride, 10, 15*time.Minute)
	for _, legacy := range []bool{false, true} {
		run := func(rotateEvery int) ([]WindowResult, *Engine) {
			eng, err := New(Config{
				Window: 3 * stride, Stride: stride, Watermark: 20 * time.Minute,
				Shards: 3, Workers: 2, RotateSymbolsEvery: rotateEvery,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng.forceLegacy = legacy
			return collect(t, eng, &SliceSource{Requests: events}), eng
		}
		rotW, rotE := run(1)
		offW, offE := run(-1)
		if rotE.Stats() != offE.Stats() {
			t.Errorf("legacy=%v: stats diverge under rotation: %+v vs %+v",
				legacy, rotE.Stats(), offE.Stats())
		}
		if !reflect.DeepEqual(windowFingerprints(rotW), windowFingerprints(offW)) {
			t.Errorf("legacy=%v: symbol rotation changed window output", legacy)
		}
		if !reflect.DeepEqual(deltaSummary(rotW), deltaSummary(offW)) {
			t.Errorf("legacy=%v: symbol rotation changed delta stream", legacy)
		}
	}
}
