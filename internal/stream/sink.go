package stream

// Sink is a pluggable consumer of the engine's window results: every
// emitted WindowResult is handed to each configured Sink, in window order,
// from the sequencer goroutine, before the result is published on the
// output channel. By the time a reader of the Start channel sees a window,
// every sink has already consumed it.
//
// internal/store implements Sink to persist lineage state; a metrics
// shipper or alerting hook are other natural implementations.
//
// Contract:
//   - Consume is called sequentially (never concurrently) in window order.
//   - The WindowResult and everything reachable from it (report, deltas,
//     matches) must be treated as read-only: the same values are published
//     to the output channel.
//   - Consume blocks the emit path, so a slow sink backpressures the
//     engine exactly like a slow channel consumer.
//   - A Consume error is recorded as the engine error (first error wins)
//     but does not stop the stream: detection output is still valid even
//     when durability is failing, and Err surfaces the fault at exit.
type Sink interface {
	Consume(w *WindowResult) error
}
