package stream

import (
	"log/slog"
	"strconv"
	"time"

	"smash/internal/core"
	"smash/internal/obs"
)

// NamedSink is an optional Sink refinement: a sink that names itself gets
// its own consume-latency histogram series and lifecycle span ("store"
// for the durable store, "forward" for the cluster forwarder) instead of
// the generic "sink" label.
type NamedSink interface {
	Sink
	// SinkName returns a short stable label for spans and metric labels.
	SinkName() string
}

// sinkName labels a sink for spans and metrics.
func sinkName(s Sink) string {
	if n, ok := s.(NamedSink); ok {
		return n.SinkName()
	}
	return "sink"
}

// engineObs bundles the engine's observability wiring: the lifecycle
// tracer, the structured logger and the latency instruments registered on
// the metrics registry. The zero value (no registry, no tracer) is fully
// inert — every instrument method is a nil-receiver no-op — so the hot
// path carries at most a nil check when observability is off.
type engineObs struct {
	tr  *obs.Tracer
	log *slog.Logger

	ingestSeal *obs.Histogram // window first event -> sealed merged index
	sealCommit *obs.Histogram // sealed index -> sinks done, result published
	detect     *obs.Histogram // detection pipeline wall-clock per window
	lag        *obs.Gauge     // wall clock minus max event time seen
	stage      map[string]*obs.Histogram
	sink       map[string]*obs.Histogram
}

// newEngineObs wires the engine instruments onto reg (nil disables
// metrics; a nil tracer disables spans; a nil logger discards).
func newEngineObs(reg *obs.Registry, tr *obs.Tracer, log *slog.Logger, sinks []Sink) engineObs {
	o := engineObs{tr: tr, log: log}
	if o.log == nil {
		o.log = obs.Discard()
	}
	if reg == nil {
		return o
	}
	o.ingestSeal = reg.Histogram("smash_ingest_seal_seconds",
		"Wall-clock from a window's first accepted event to its sealed, merged index.")
	o.sealCommit = reg.Histogram("smash_seal_commit_seconds",
		"Wall-clock from a window's sealed index to its committed result (sinks done, result published).")
	o.detect = reg.Histogram("smash_window_detect_seconds",
		"Wall-clock running the detection pipeline, per window.")
	o.lag = reg.Gauge("smash_watermark_lag_seconds",
		"Event-time lag: wall clock minus the maximum event time ingested.")
	o.stage = make(map[string]*obs.Histogram)
	for _, s := range core.StageNames() {
		o.stage[s] = reg.Histogram("smash_pipeline_stage_seconds",
			"Wall-clock per detection pipeline stage run.", "stage", s)
	}
	o.sink = make(map[string]*obs.Histogram)
	for _, s := range sinks {
		name := sinkName(s)
		o.sink[name] = reg.Histogram("smash_sink_consume_seconds",
			"Wall-clock per sink consume on the window commit path.", "sink", name)
	}
	return o
}

// beginSeal stamps the seal start on the job and records the window
// header plus the "build" span (first accepted event -> seal start).
func (o *engineObs) beginSeal(j *windowJob) {
	j.sealStart = time.Now()
	if o.tr == nil {
		return
	}
	seq := int64(j.seq)
	o.tr.Window(seq, j.start, j.end)
	if !j.firstEvent.IsZero() {
		o.tr.Record(seq, "build", j.firstEvent, j.sealStart.Sub(j.firstEvent))
	}
}

// finishSeal stamps the merged index completion, records the "seal" span
// and observes the ingest->seal latency. Called by whichever goroutine
// assembled the window index (the sealer on the ring path, the per-window
// merge goroutine on the legacy path).
func (o *engineObs) finishSeal(j *windowJob) {
	j.sealedAt = time.Now()
	if o.tr != nil {
		o.tr.Record(int64(j.seq), "seal", j.sealStart, j.sealedAt.Sub(j.sealStart),
			"requests", itoa(j.idx.RequestCount))
	}
	if !j.firstEvent.IsZero() {
		o.ingestSeal.Observe(j.sealedAt.Sub(j.firstEvent).Seconds())
	}
	o.log.Debug("window sealed", "window", j.seq, "requests", j.idx.RequestCount)
}

// endDetect records the "detect" span and wall-clock histogram for one
// window's pipeline run.
func (o *engineObs) endDetect(seq int64, start time.Time, err error) {
	d := time.Since(start)
	if o.tr != nil {
		attrs := []string(nil)
		if err != nil {
			attrs = []string{"error", err.Error()}
		}
		o.tr.Record(seq, "detect", start, d, attrs...)
	}
	o.detect.Observe(d.Seconds())
}

// stageObservers returns the per-run extra observers for one window's
// detection, or nil when neither spans nor stage histograms are wired.
func (o *engineObs) stageObservers(seq int64) []core.Observer {
	if o.tr == nil && o.stage == nil {
		return nil
	}
	return []core.Observer{StageTraceObserver(o.tr, o.stage, seq)}
}

// consumeSink feeds one window result to a sink, recording the consume
// span and latency series.
func (o *engineObs) consumeSink(s Sink, res *WindowResult) error {
	name := sinkName(s)
	t0 := time.Now()
	err := s.Consume(res)
	d := time.Since(t0)
	o.tr.Record(int64(res.Seq), name, t0, d)
	o.sink[name].Observe(d.Seconds())
	return err
}

// StageTraceObserver returns a core.Observer bound to one window: every
// finished pipeline stage is recorded as a "detect:<stage>" span on tr
// and observed in the per-stage histogram family. Both tr and stages may
// be nil. The aggregator reuses this to trace its merged cluster windows.
func StageTraceObserver(tr *obs.Tracer, stages map[string]*obs.Histogram, seq int64) core.Observer {
	return &stageTraceObserver{tr: tr, stages: stages, seq: seq}
}

type stageTraceObserver struct {
	tr     *obs.Tracer
	stages map[string]*obs.Histogram
	seq    int64
}

func (o *stageTraceObserver) StageStart(string, int) {}

func (o *stageTraceObserver) StageEnd(res core.StageResult) {
	if o.tr != nil {
		attrs := []string(nil)
		if res.Err != nil {
			attrs = []string{"error", res.Err.Error()}
		}
		o.tr.Record(o.seq, "detect:"+res.Stage,
			time.Now().Add(-res.Duration), res.Duration, attrs...)
	}
	o.stages[res.Stage].Observe(res.Duration.Seconds())
}

// itoa keeps span attribute construction allocation-light.
func itoa(n int) string { return strconv.Itoa(n) }
