// Package stream is SMASH's streaming ingestion engine: the piece that
// turns the batch core.Detector into a long-running detection service. The
// paper positions SMASH as a system that "can be run everyday to detect
// daily malicious activities" (§I); this package generalizes "everyday" to
// arbitrary tumbling or sliding time windows over a continuous event feed.
//
// The pipeline is:
//
//	Source ──(bounded channel)──▶ windower ──▶ N index shards
//	                                 │               │ (seal: merge fragments)
//	                                 └───────────────▶ detection worker pool
//	                                                        │
//	                              sequencer ◀───────────────┘
//	                         (reorders windows, feeds tracker,
//	                          emits WindowResults with deltas)
//
// Events are read one at a time from a Source with bounded-channel
// backpressure: when downstream detection cannot keep up, reads stall
// rather than buffering unboundedly. Each event is hashed by server key to
// one of Config.Shards shard goroutines, which accumulate partial
// trace.Index fragments; trace.Index aggregation commutes, so the sharded
// build is bit-identical to a sequential one. When the watermark (max
// event time minus Config.Watermark) passes a window's end the window is
// sealed and its merged index is dispatched to a pool of Config.Workers
// detector workers running core.RunIndex. Finished windows are
// re-sequenced into window order, fed through a tracker.Tracker to link
// campaigns across windows, and emitted on the output channel as
// WindowResults carrying appear/persist/rotate deltas.
//
// # Incremental sliding windows
//
// When the stride divides the window (every tumbling config, and any
// sliding config with window = k*stride), windows are maintained
// incrementally: shards accumulate one fragment per *stride* — each event
// is indexed exactly once, not once per overlapping window — and a
// single sealer goroutine keeps a ring of the k live per-stride merged
// fragments. Sealing window w evicts the expired fragment (which becomes
// the window index, zero-copy) and folds in only the fragments that
// arrived since the previous seal, instead of re-merging window/stride
// fragments from scratch. All indexes share one trace.Symbols, so every
// merge on this path is a pure integer-map fold. Configurations whose
// stride does not divide the window fall back to the per-window fragment
// path; both paths produce byte-identical output (see
// TestIncrementalMatchesLegacyWindowing).
//
// The engine is deterministic for a fixed input order and configuration:
// shard and worker counts change wall-clock time, never output.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/trace"
	"smash/internal/tracker"
)

// Config parameterizes an Engine.
type Config struct {
	// Name labels emitted window reports (default "stream").
	Name string
	// Window is the detection window size (required, > 0).
	Window time.Duration
	// Stride is the window start spacing. 0 defaults to Window (tumbling
	// windows); Stride < Window yields overlapping sliding windows, where
	// one event lands in Window/Stride consecutive windows.
	Stride time.Duration
	// Watermark is the allowed event lateness: a window [start, end) seals
	// only once an event with Time >= end+Watermark arrives (or the stream
	// ends). Out-of-order events older than the watermark are dropped and
	// counted in Stats.Late.
	Watermark time.Duration
	// Origin anchors window starts (windows begin at Origin + k*Stride,
	// k >= 0). Zero derives the origin from the first event's time
	// truncated to Stride — for day-long strides that is UTC midnight.
	Origin time.Time
	// Workers is the detection worker pool size (default 1). More workers
	// overlap detection of distinct windows; output is unaffected.
	Workers int
	// Shards is the number of concurrent index-builder shards (default 4).
	Shards int
	// Buffer is the ingestion channel capacity bounding how far the source
	// reader may run ahead of windowing (default 1024).
	Buffer int
	// Detector configures the core.Detector run on every sealed window.
	Detector []core.Option
	// RotateSymbolsEvery is the number of sealed windows between engine
	// symbol-table rotations. Interned symbol tables and their memo
	// caches only ever grow, so an endless stream of near-unique keys
	// (domain flux hostnames, nonce-bearing query strings) would grow
	// them without bound; rotation swaps in fresh tables and lets the old
	// epoch be collected once its last in-flight window retires.
	// Fragments from different epochs merge through the name-remap path,
	// so rotation never changes output. 0 uses
	// DefaultRotateSymbolsEvery; negative disables rotation.
	RotateSymbolsEvery int
	// Tracker overrides the lineage tracker (default tracker.New()).
	Tracker *tracker.Tracker
	// Sinks receive every emitted WindowResult in window order, before it
	// is published on the output channel (see Sink).
	Sinks []Sink
	// KeepIndex publishes each window's merged traffic index on
	// WindowResult.Index (read-only for consumers). Off by default: the
	// index is normally garbage the moment detection finishes, and keeping
	// it alive extends its lifetime to the consumer's.
	KeepIndex bool
	// IndexOnly turns the engine into a pure windowing node: sealed
	// windows skip detection and the tracker entirely and are emitted with
	// only their index populated (implies KeepIndex). This is cluster
	// ingest mode — internal/cluster's Forwarder consumes the indexes and
	// ships them to an aggregator that runs detection over the merged
	// cluster-wide window.
	IndexOnly bool
	// Metrics registers the engine's latency histograms (ingest->seal,
	// seal->commit, detection, per-stage, per-sink) and the watermark-lag
	// gauge on this registry. Nil disables metrics.
	Metrics *obs.Registry
	// Tracer records each window's lifecycle spans (build, seal, detect and
	// its stages, sink consumes). Nil disables tracing.
	Tracer *obs.Tracer
	// Logger receives structured engine logs. Nil discards them.
	Logger *slog.Logger
}

// Stats is a snapshot of the engine's activity counters. Counters are
// monotonic and safe to read while the engine runs (the live /v1/stats
// path); they are final once the output channel has closed.
type Stats struct {
	// Events is the number of events accepted into windows.
	Events int `json:"events"`
	// Late is the number of events dropped because every window containing
	// them had already sealed.
	Late int `json:"late"`
	// Windows is the number of WindowResults emitted.
	Windows int `json:"windows"`
	// EmptyWindows counts emitted windows that contained no events.
	EmptyWindows int `json:"emptyWindows"`
}

// Engine is a running streaming detection pipeline. Create with New, start
// with Start, consume the returned channel, then inspect Err, Stats and
// Tracker.
type Engine struct {
	cfg Config
	det *core.Detector
	tk  *tracker.Tracker
	out chan WindowResult
	// o bundles the observability wiring (tracer, logger, instruments);
	// its zero value is fully inert, so unwired engines pay only nil
	// checks on the hot path.
	o engineObs

	// syms is the engine-wide symbol table epoch: every fragment, ring
	// entry and window index interns through the current epoch, so merges
	// are integer-map folds and hot keys are hashed once per epoch. The
	// windower rotates epochs every Config.RotateSymbolsEvery windows to
	// bound table growth on endless streams.
	syms atomic.Pointer[trace.Symbols]
	// forceLegacy disables the stride-fragment ring (tests compare the
	// incremental path against this reference path).
	forceLegacy bool

	// ctx is the run context given to StartContext; its cancellation
	// stops ingestion and aborts in-flight window detections.
	ctx  context.Context
	done chan struct{} // closed once the output channel has closed

	quit     chan struct{}
	stopOnce sync.Once
	started  bool
	// readerState lets the windower's Stop drain distinguish "an event may
	// still be in flight to the channel" (running) from "the reader is
	// parked inside Source.Read or gone" — see windower's quit branch.
	readerState atomic.Int32

	errMu sync.Mutex
	err   error

	// Counters are atomics so Stats() may be read live from HTTP serving
	// goroutines while the windower and sequencer update them.
	ctrEvents, ctrLate, ctrWindows, ctrEmpty atomic.Int64
}

// New validates the config and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Window <= 0 {
		return nil, errors.New("stream: Window must be > 0")
	}
	if cfg.Stride == 0 {
		cfg.Stride = cfg.Window
	}
	if cfg.Stride < 0 || cfg.Stride > cfg.Window {
		return nil, errors.New("stream: Stride must be in (0, Window]")
	}
	if cfg.Watermark < 0 {
		return nil, errors.New("stream: Watermark must be >= 0")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.Name == "" {
		cfg.Name = "stream"
	}
	if cfg.Tracker == nil {
		cfg.Tracker = tracker.New()
	}
	if cfg.RotateSymbolsEvery == 0 {
		cfg.RotateSymbolsEvery = DefaultRotateSymbolsEvery
	}
	e := &Engine{
		cfg:  cfg,
		det:  core.New(cfg.Detector...),
		tk:   cfg.Tracker,
		out:  make(chan WindowResult, cfg.Workers),
		done: make(chan struct{}),
		quit: make(chan struct{}),
	}
	e.syms.Store(trace.NewSymbols())
	e.o = newEngineObs(cfg.Metrics, cfg.Tracer, cfg.Logger, cfg.Sinks)
	return e, nil
}

// DefaultRotateSymbolsEvery bounds symbol-table growth: with day-scale
// windows it rotates roughly once a quarter; with minute-scale windows,
// a few times a day.
const DefaultRotateSymbolsEvery = 128

// symbols returns the current symbol-table epoch.
func (e *Engine) symbols() *trace.Symbols { return e.syms.Load() }

// ringStrides returns the number of strides per window when the
// incremental ring applies (stride divides window), or 0 for the
// per-window fragment fallback.
func (e *Engine) ringStrides() int64 {
	if e.forceLegacy || e.cfg.Window%e.cfg.Stride != 0 {
		return 0
	}
	return int64(e.cfg.Window / e.cfg.Stride)
}

// Start launches the pipeline over src and returns the result channel. The
// channel closes once the source is exhausted (or Stop is called) and every
// in-flight window has been sealed, detected and emitted. Start may be
// called once. Start is StartContext with a background context.
func (e *Engine) Start(src Source) <-chan WindowResult {
	return e.StartContext(context.Background(), src)
}

// StartContext is Start bound to a context: when ctx is cancelled the
// engine stops ingesting (as if Stop had been called) AND cancels in-flight
// window detections — each detection worker's core pipeline aborts at its
// next stage boundary, the affected windows are emitted without reports,
// and Err reports ctx.Err(). This is the hard-shutdown path; Stop alone
// remains the graceful drain that lets in-flight detections finish.
func (e *Engine) StartContext(ctx context.Context, src Source) <-chan WindowResult {
	if e.started {
		panic("stream: Start called twice")
	}
	e.started = true
	e.ctx = ctx
	e.o.log.Info("engine starting",
		"name", e.cfg.Name, "window", e.cfg.Window, "stride", e.cfg.Stride,
		"workers", e.cfg.Workers, "shards", e.cfg.Shards, "indexOnly", e.cfg.IndexOnly)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				e.setErr(ctx.Err())
				e.Stop()
			case <-e.done:
			}
		}()
	}

	events := make(chan trace.Request, e.cfg.Buffer)
	jobs := make(chan windowJob)
	results := make(chan windowDone, e.cfg.Workers)

	go e.read(src, events)

	var workerWG sync.WaitGroup
	workerWG.Add(e.cfg.Workers)
	for i := 0; i < e.cfg.Workers; i++ {
		go func() {
			defer workerWG.Done()
			e.detect(jobs, results)
		}()
	}
	go func() {
		workerWG.Wait()
		close(results)
	}()

	go e.windower(events, jobs)
	go e.sequence(results)
	return e.out
}

// Stop asks the engine to stop ingesting and drain: every event already
// handed to the engine is windowed, then open windows are sealed and
// emitted as if the source had ended. Safe to call concurrently and more
// than once. A reader blocked inside Source.Read keeps the ingestion
// goroutine alive until that Read returns, but draining does not wait for
// it.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.quit) })
}

// Err returns the first source, detection or context error, if any. Valid
// once the output channel has closed.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// Stats returns a point-in-time snapshot of the ingestion counters. Safe
// to call at any time, including while the engine runs; final once the
// output channel has closed.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:       int(e.ctrEvents.Load()),
		Late:         int(e.ctrLate.Load()),
		Windows:      int(e.ctrWindows.Load()),
		EmptyWindows: int(e.ctrEmpty.Load()),
	}
}

// Tracker exposes the cross-window lineage tracker (for end-of-run
// summaries). Valid once the output channel has closed.
func (e *Engine) Tracker() *tracker.Tracker { return e.tk }

func (e *Engine) setErr(err error) {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

// Reader states, for the Stop drain handshake.
const (
	readerRunning int32 = iota // between Read returning and the send landing
	readerParked               // blocked inside Source.Read — nothing in flight
	readerExited
)

// read pumps the source into the bounded event channel until EOF, error or
// Stop.
func (e *Engine) read(src Source, events chan<- trace.Request) {
	defer close(events)
	defer e.readerState.Store(readerExited)
	for {
		select {
		case <-e.quit:
			return
		default:
		}
		e.readerState.Store(readerParked)
		req, err := src.Read()
		e.readerState.Store(readerRunning)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				e.setErr(fmt.Errorf("stream: source: %w", err))
				e.o.log.Error("source read failed", "err", err)
			}
			return
		}
		select {
		case events <- req:
		case <-e.quit:
			return
		}
	}
}

// windowJob is one sealed window headed for detection.
type windowJob struct {
	seq        int
	start, end time.Time
	idx        *trace.Index
	// Lifecycle timestamps for spans and latency histograms. firstEvent is
	// zero for windows that never saw an event or when tracing is off.
	firstEvent time.Time
	sealStart  time.Time
	sealedAt   time.Time
}

// windowDone is one detected window headed for the sequencer.
type windowDone struct {
	seq        int
	start, end time.Time
	requests   int
	report     *core.Report // nil for empty windows
	idx        *trace.Index // set when KeepIndex/IndexOnly
	sealedAt   time.Time    // when the merged index was ready
}

// shardMsg is either an event assignment (reply fields nil) or a seal
// barrier. Channel FIFO ordering guarantees a barrier arrives after every
// event dispatched before it.
//
// Legacy path (per-window fragments): events carry the inclusive window
// range [lo, hi] and the barrier (replyOne) hands over one window's
// fragment. Ring path (per-stride fragments): events carry their single
// stride seq in lo and the barrier (replyAll) hands over every fragment
// with seq <= sealMax.
type shardMsg struct {
	req      trace.Request
	lo, hi   int64
	sealMax  int64
	replyOne chan<- *trace.Index
	replyAll chan<- map[int64]*trace.Index
}

// shardLoop owns one shard's index fragments, keyed by window seq (legacy)
// or stride seq (ring). All fragments share the engine Symbols.
func (e *Engine) shardLoop(ch <-chan shardMsg) {
	frags := make(map[int64]*trace.Index)
	for m := range ch {
		switch {
		case m.replyOne != nil:
			frag := frags[m.sealMax]
			delete(frags, m.sealMax)
			if frag == nil {
				frag = trace.NewIndexWith(e.symbols())
			}
			m.replyOne <- frag
		case m.replyAll != nil:
			// Hand over (and forget) every fragment the sealer may now
			// need. Ownership transfers: the shard never touches a
			// handed-over fragment again; a late event for the same
			// stride simply starts a fresh fragment that the next
			// barrier delivers as a delta.
			out := make(map[int64]*trace.Index, 4)
			for s, frag := range frags {
				if s <= m.sealMax {
					out[s] = frag
					delete(frags, s)
				}
			}
			m.replyAll <- out
		default:
			for s := m.lo; s <= m.hi; s++ {
				frag := frags[s]
				if frag == nil {
					frag = trace.NewIndexWith(e.symbols())
					frags[s] = frag
				}
				frag.Add(&m.req)
			}
		}
	}
}

// sealReq asks the sealer to assemble one window, in seal order. The
// replies channel delivers each shard's fragment handover for the barrier
// that accompanied this seal.
type sealReq struct {
	seq     int64 // absolute window seq
	job     windowJob
	replies <-chan map[int64]*trace.Index
}

// sealer is the single goroutine that owns the stride-fragment ring. For
// every sealed window it folds the newly handed-over shard fragments into
// the ring, evicts the expired stride fragment — which becomes the window
// index, zero-copy — and merges the k-1 still-live fragments on top. It
// runs strictly in window order, pipelined behind the windower.
func (e *Engine) sealer(reqs <-chan sealReq, jobs chan<- windowJob, k int64, nShards int, slots <-chan struct{}) {
	defer close(jobs)
	ring := make(map[int64]*trace.Index)
	for r := range reqs {
		for i := 0; i < nShards; i++ {
			for s, frag := range <-r.replies {
				if cur := ring[s]; cur == nil {
					ring[s] = frag
				} else {
					cur.Merge(frag)
				}
			}
		}
		// The expired fragment is exactly the part of the window no later
		// window needs — adopt it as the window index instead of copying.
		merged := ring[r.seq]
		delete(ring, r.seq)
		if merged == nil {
			merged = trace.NewIndexWith(e.symbols())
		}
		for s := r.seq + 1; s < r.seq+k; s++ {
			if frag := ring[s]; frag != nil {
				merged.Merge(frag)
			}
		}
		r.job.idx = merged
		e.o.finishSeal(&r.job)
		jobs <- r.job
		<-slots
	}
}

// windower assigns events to windows, advances the watermark, and seals
// windows in order. It owns all window bookkeeping; shards only aggregate.
func (e *Engine) windower(events <-chan trace.Request, jobs chan<- windowJob) {
	nShards := e.cfg.Shards
	ringK := e.ringStrides()
	shardCh := make([]chan shardMsg, nShards)
	var shardWG sync.WaitGroup
	for i := range shardCh {
		shardCh[i] = make(chan shardMsg, 64)
		shardWG.Add(1)
		go func(ch <-chan shardMsg) {
			defer shardWG.Done()
			e.shardLoop(ch)
		}(shardCh[i])
	}

	var (
		originSet bool
		baseSet   bool
		origin    time.Time
		maxTime   time.Time
		base      int64 // seq of the first window; emitted as Seq 0
		nextSeal  int64 // next window seq to seal
		maxSeq    int64 // highest window seq holding any event
		sealWG    sync.WaitGroup
		sealCh    chan sealReq
		// sealSlots bounds sealed-but-undetected windows so a slow
		// consumer backpressures ingestion instead of growing memory.
		sealSlots = make(chan struct{}, 2*e.cfg.Workers)
		// firstSeen stamps each window's first accepted event (the start
		// of its "build" span and of the ingest->seal latency); nil when
		// neither tracing nor latency metrics are wired.
		firstSeen map[int64]time.Time
	)
	if e.o.tr != nil || e.o.ingestSeal != nil {
		firstSeen = make(map[int64]time.Time)
	}
	if ringK > 0 {
		sealCh = make(chan sealReq, e.cfg.Workers)
		go e.sealer(sealCh, jobs, ringK, nShards, sealSlots)
	}

	// afterSeal rotates the symbol-table epoch on schedule. Fragments and
	// ring entries from the old epoch merge through the name-remap path,
	// so rotation is invisible in output (TestSymbolRotationInvisible).
	sealed := 0
	afterSeal := func() {
		sealed++
		if e.cfg.RotateSymbolsEvery > 0 && sealed%e.cfg.RotateSymbolsEvery == 0 {
			e.syms.Store(trace.NewSymbols())
		}
	}

	seal := func(seq int64) {
		sealSlots <- struct{}{}
		start := e.cfg.Stride * time.Duration(seq)
		job := windowJob{
			seq:   int(seq - base),
			start: origin.Add(start),
			end:   origin.Add(start + e.cfg.Window),
		}
		if firstSeen != nil {
			job.firstEvent = firstSeen[seq]
			delete(firstSeen, seq)
		}
		e.o.beginSeal(&job)
		if ringK > 0 {
			replies := make(chan map[int64]*trace.Index, nShards)
			for _, ch := range shardCh {
				ch <- shardMsg{sealMax: seq + ringK - 1, replyAll: replies}
			}
			sealCh <- sealReq{seq: seq, job: job, replies: replies}
			return
		}
		replies := make(chan *trace.Index, nShards)
		for _, ch := range shardCh {
			ch <- shardMsg{sealMax: seq, replyOne: replies}
		}
		sealWG.Add(1)
		go func() {
			defer sealWG.Done()
			defer func() { <-sealSlots }()
			merged := trace.NewIndexWith(e.symbols())
			for i := 0; i < nShards; i++ {
				merged.Merge(<-replies)
			}
			job.idx = merged
			e.o.finishSeal(&job)
			jobs <- job
		}()
	}

	handle := func(req trace.Request) {
		t := req.Time
		if !originSet {
			if e.cfg.Origin.IsZero() {
				origin = t.Truncate(e.cfg.Stride)
			} else {
				origin = e.cfg.Origin
			}
			originSet = true
		}
		lo, hi := seqRange(t.Sub(origin), e.cfg.Window, e.cfg.Stride)
		if hi < 0 { // entirely before the window origin
			e.ctrLate.Add(1)
			return
		}
		if lo < 0 {
			lo = 0
		}
		if !baseSet {
			base, nextSeal, maxSeq = lo, lo, lo
			baseSet = true
		}
		if hi < nextSeal { // every containing window already sealed
			e.ctrLate.Add(1)
			return
		}
		if lo < nextSeal { // partially late: only still-open windows get it
			lo = nextSeal
		}
		if hi > maxSeq {
			maxSeq = hi
		}
		e.ctrEvents.Add(1)
		if firstSeen != nil {
			now := time.Now()
			for s := lo; s <= hi; s++ {
				if _, ok := firstSeen[s]; !ok {
					firstSeen[s] = now
				}
			}
		}
		shard := shardCh[shardOf(e.symbols().RequestServerKey(&req), nShards)]
		if ringK > 0 {
			// One fragment per stride: the event's stride is hi (the last
			// window whose range starts at or before it). Windows
			// [lo, hi] pick the fragment up from the ring at seal time.
			shard <- shardMsg{req: req, lo: hi, hi: hi}
		} else {
			shard <- shardMsg{req: req, lo: lo, hi: hi}
		}

		if t.After(maxTime) {
			maxTime = t
		}
		if e.o.lag != nil {
			e.o.lag.Set(time.Since(maxTime).Seconds())
		}
		watermark := maxTime.Add(-e.cfg.Watermark)
		for nextSeal <= maxSeq {
			end := origin.Add(e.cfg.Stride*time.Duration(nextSeal) + e.cfg.Window)
			if end.After(watermark) {
				break
			}
			seal(nextSeal)
			nextSeal++
			afterSeal()
		}
	}

ingest:
	for {
		select {
		case req, ok := <-events:
			if !ok {
				break ingest
			}
			handle(req)
		case <-e.quit:
			// Stop: consume everything the reader has committed to the
			// bounded channel. An empty channel is only quiescent once the
			// reader is parked in Source.Read or gone — while it is
			// running, a handed-over event may still be landing, so yield
			// and re-check rather than dropping it.
			for {
				select {
				case req, ok := <-events:
					if !ok {
						break ingest
					}
					handle(req)
				default:
					if e.readerState.Load() != readerRunning {
						break ingest
					}
					runtime.Gosched()
				}
			}
		}
	}

	// Source exhausted (or Stop): drain every open window in order.
	if baseSet {
		for ; nextSeal <= maxSeq; nextSeal++ {
			seal(nextSeal)
			afterSeal()
		}
	}
	for _, ch := range shardCh {
		close(ch)
	}
	shardWG.Wait()
	if ringK > 0 {
		close(sealCh) // the sealer drains pending seals, then closes jobs
		return
	}
	sealWG.Wait()
	close(jobs)
}

// seqRange returns the inclusive range of window sequence numbers whose
// half-open interval [seq*stride, seq*stride+window) contains offset dt
// from the origin. hi < 0 means the event precedes every window.
func seqRange(dt, window, stride time.Duration) (lo, hi int64) {
	hi = floorDiv(int64(dt), int64(stride))
	lo = floorDiv(int64(dt-window), int64(stride)) + 1
	return lo, hi
}

// floorDiv is integer division rounding towards negative infinity (b > 0).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// shardOf maps a server key to a shard with FNV-1a, so one server's
// requests always meet in the same fragment.
func shardOf(key string, n int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// detect runs the batch pipeline over sealed windows. Empty windows skip
// detection but still flow through so the sequencer can advance the
// tracker's window clock. The run context cancels in-flight detections;
// cancelled windows flow through report-less so the sequencer still
// closes the output promptly.
func (e *Engine) detect(jobs <-chan windowJob, results chan<- windowDone) {
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	for j := range jobs {
		d := windowDone{seq: j.seq, start: j.start, end: j.end, requests: j.idx.RequestCount, sealedAt: j.sealedAt}
		if e.cfg.KeepIndex || e.cfg.IndexOnly {
			d.idx = j.idx
		}
		switch {
		case e.cfg.IndexOnly:
			// Forward-only node: the sealed index is the product.
		case ctx.Err() != nil:
			// Hard shutdown: don't pay ComputeStats for a detection that
			// would abort before its first stage — flow through report-less.
			e.setErr(ctx.Err())
		case j.idx.RequestCount > 0:
			name := fmt.Sprintf("%s-w%d", e.cfg.Name, j.seq)
			t0 := time.Now()
			report, err := e.det.RunIndexContext(ctx, j.idx, j.idx.ComputeStats(name), e.o.stageObservers(int64(j.seq))...)
			e.o.endDetect(int64(j.seq), t0, err)
			switch {
			case err == nil:
				d.report = report
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				e.setErr(err)
			default:
				e.setErr(fmt.Errorf("stream: window %d: %w", j.seq, err))
				e.o.log.Error("window detection failed", "window", j.seq, "err", err)
			}
		}
		results <- d
	}
}

// sequence restores window order over out-of-order detection completions,
// feeds each window through the tracker, and emits WindowResults. Running
// single-threaded here is what makes worker count invisible in the output.
func (e *Engine) sequence(results <-chan windowDone) {
	defer close(e.done)
	defer close(e.out)
	pending := make(map[int]windowDone)
	next := 0
	for d := range results {
		pending[d.seq] = d
		for {
			d, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			e.emit(d)
		}
	}
}

// emit tracks one in-order window, feeds every sink, and publishes the
// result.
func (e *Engine) emit(d windowDone) {
	res := WindowResult{Seq: d.seq, Start: d.start, End: d.end, Requests: d.requests, Report: d.report, Index: d.idx}
	if e.cfg.IndexOnly {
		// Forward-only node: no detection ran, so there is nothing to
		// track — sinks (the cluster forwarder) get the index as-is.
		if d.requests == 0 {
			e.ctrEmpty.Add(1)
		}
	} else {
		report := d.report
		if report == nil {
			// Observe an empty report so lineage day arithmetic (FirstDay,
			// LastDay, window gaps) stays aligned with the window sequence.
			report = &core.Report{}
			if d.requests == 0 {
				// Report-less windows WITH requests are aborted, not empty.
				e.ctrEmpty.Add(1)
			}
		}
		matches := e.tk.Observe(report)
		res.Matches = matches
		// Retirements happened inside Observe before matching, so retire
		// deltas lead the window's transition list.
		res.Deltas = append(RetireDeltas(d.seq, e.tk.RetiredNow()),
			DeltasFor(d.seq, report.AllCampaigns(), matches)...)
	}
	for _, s := range e.cfg.Sinks {
		if err := e.o.consumeSink(s, &res); err != nil {
			e.setErr(fmt.Errorf("stream: sink: %w", err))
			e.o.log.Error("sink failed", "window", d.seq, "sink", sinkName(s), "err", err)
		}
	}
	if e.o.sealCommit != nil && !d.sealedAt.IsZero() {
		e.o.sealCommit.Observe(time.Since(d.sealedAt).Seconds())
	}
	e.ctrWindows.Add(1)
	e.o.log.Debug("window committed", "window", d.seq, "requests", d.requests)
	e.out <- res
}
