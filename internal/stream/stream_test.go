package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"smash/internal/core"
	"smash/internal/similarity"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/tracker"
)

// collect drains the engine and returns every window in emission order.
func collect(t *testing.T, eng *Engine, src Source) []WindowResult {
	t.Helper()
	var out []WindowResult
	for r := range eng.Start(src) {
		out = append(out, r)
	}
	if err := eng.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	return out
}

func evReq(t time.Time, client, host, path string) trace.Request {
	return trace.Request{Time: t, Client: client, Host: host, ServerIP: "9.9.9.9", Path: path, Status: 200}
}

func at(hour, min int) time.Time {
	return time.Date(2011, 10, 1, hour, min, 0, 0, time.UTC)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero Window accepted")
	}
	if _, err := New(Config{Window: time.Hour, Stride: 2 * time.Hour}); err == nil {
		t.Error("Stride > Window accepted")
	}
	if _, err := New(Config{Window: time.Hour, Watermark: -time.Minute}); err == nil {
		t.Error("negative Watermark accepted")
	}
	if _, err := New(Config{Window: time.Hour}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// Out-of-order events within the watermark land in their window; events
// older than every open window are dropped and counted.
func TestOutOfOrderWatermark(t *testing.T) {
	events := []trace.Request{
		evReq(at(9, 10), "c1", "a.com", "/x"),
		evReq(at(9, 50), "c1", "b.com", "/x"),
		evReq(at(10, 5), "c2", "c.com", "/x"),
		// 40 minutes out of order, but the 30m watermark holds window
		// [09:00,10:00) open, so this still counts.
		evReq(at(9, 40), "c2", "d.com", "/x"),
		// Jumps the watermark past 11:00, sealing the first two windows.
		evReq(at(11, 30), "c3", "e.com", "/x"),
		// Beyond the watermark: every containing window sealed. Dropped.
		evReq(at(9, 55), "c3", "f.com", "/x"),
	}
	eng, err := New(Config{Window: time.Hour, Watermark: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, eng, &SliceSource{Requests: events})
	if len(got) != 3 {
		t.Fatalf("windows = %d, want 3", len(got))
	}
	wantReqs := []int{3, 1, 1}
	for i, w := range got {
		if w.Seq != i {
			t.Errorf("window %d has Seq %d", i, w.Seq)
		}
		if w.Requests != wantReqs[i] {
			t.Errorf("window %d requests = %d, want %d", i, w.Requests, wantReqs[i])
		}
	}
	if got[0].Start != at(9, 0) || got[0].End != at(10, 0) {
		t.Errorf("window 0 bounds [%v, %v)", got[0].Start, got[0].End)
	}
	stats := eng.Stats()
	if stats.Events != 5 || stats.Late != 1 {
		t.Errorf("stats = %+v, want Events=5 Late=1", stats)
	}
}

// A gap in the event stream yields empty windows, emitted in order so the
// tracker's window clock keeps counting.
func TestEmptyWindows(t *testing.T) {
	events := []trace.Request{
		evReq(at(9, 10), "c1", "a.com", "/x"),
		evReq(at(12, 10), "c1", "a.com", "/x"),
	}
	eng, err := New(Config{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, eng, &SliceSource{Requests: events})
	if len(got) != 4 {
		t.Fatalf("windows = %d, want 4", len(got))
	}
	for i, wantEmpty := range []bool{false, true, true, false} {
		if got[i].Empty() != wantEmpty {
			t.Errorf("window %d Empty = %v, want %v", i, got[i].Empty(), wantEmpty)
		}
		if wantEmpty && got[i].Report != nil {
			t.Errorf("window %d: empty window carries a report", i)
		}
	}
	if stats := eng.Stats(); stats.Windows != 4 || stats.EmptyWindows != 2 {
		t.Errorf("stats = %+v, want Windows=4 EmptyWindows=2", stats)
	}
	if eng.Tracker().Day() != 4 {
		t.Errorf("tracker day = %d, want 4 (empty windows must advance the clock)", eng.Tracker().Day())
	}
}

// With sliding windows an interior event lands in every overlapping window,
// and an event exactly on a boundary belongs to the starting window only
// (half-open [start, end) semantics).
func TestSlidingWindowBoundary(t *testing.T) {
	events := []trace.Request{
		evReq(at(10, 0), "c1", "a.com", "/x"),
		evReq(at(11, 0), "c1", "b.com", "/x"),
		evReq(at(12, 0), "c1", "c.com", "/x"),
	}
	eng, err := New(Config{Window: 2 * time.Hour, Stride: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, eng, &SliceSource{Requests: events})
	if len(got) != 3 {
		t.Fatalf("windows = %d, want 3", len(got))
	}
	// [10,12): 10:00 + 11:00. [11,13): 11:00 + 12:00 (the 11:00 boundary
	// event is in both sliding windows). [12,14): 12:00 only — the 12:00
	// event is excluded from [10,12) by the half-open boundary.
	wantReqs := []int{2, 2, 1}
	for i, w := range got {
		if w.Requests != wantReqs[i] {
			t.Errorf("window %d [%v,%v) requests = %d, want %d",
				i, w.Start, w.End, w.Requests, wantReqs[i])
		}
	}
	if got[1].Start != at(11, 0) || got[1].End != at(13, 0) {
		t.Errorf("window 1 bounds [%v, %v)", got[1].Start, got[1].End)
	}
}

// blockingSource yields its requests then blocks, signalling ingested once
// the engine has come back for more — at which point every request has
// entered the engine.
type blockingSource struct {
	reqs     []trace.Request
	pos      int
	ingested chan struct{}
	release  chan struct{}
	once     sync.Once
}

func (s *blockingSource) Read() (trace.Request, error) {
	if s.pos < len(s.reqs) {
		r := s.reqs[s.pos]
		s.pos++
		return r, nil
	}
	s.once.Do(func() { close(s.ingested) })
	<-s.release
	return trace.Request{}, io.EOF
}

// Stop must seal and emit in-flight windows even when the watermark never
// advanced far enough to seal them.
func TestCleanShutdownDrainsOpenWindows(t *testing.T) {
	src := &blockingSource{
		reqs: []trace.Request{
			evReq(at(9, 10), "c1", "a.com", "/x"),
			evReq(at(9, 20), "c2", "a.com", "/x"),
			evReq(at(9, 30), "c1", "b.com", "/x"),
		},
		ingested: make(chan struct{}),
		release:  make(chan struct{}),
	}
	defer close(src.release)
	eng, err := New(Config{Window: time.Hour, Watermark: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	out := eng.Start(src)
	<-src.ingested
	eng.Stop()
	var got []WindowResult
	for r := range out {
		got = append(got, r)
	}
	if err := eng.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("windows = %d, want 1 (drained on Stop)", len(got))
	}
	if got[0].Requests != 3 {
		t.Errorf("drained window requests = %d, want 3", got[0].Requests)
	}
	eng.Stop() // idempotent
}

// lineageSnapshot is the comparable essence of a tracker lineage.
type lineageSnapshot struct {
	ID, FirstDay, LastDay, DaysActive, AgileDays int
	Servers                                      map[string]int
	Clients                                      map[string]int
}

func snapshotLineages(tk *tracker.Tracker) []lineageSnapshot {
	var out []lineageSnapshot
	for _, l := range tk.Lineages() {
		out = append(out, lineageSnapshot{
			ID: l.ID, FirstDay: l.FirstDay, LastDay: l.LastDay,
			DaysActive: l.DaysActive, AgileDays: l.AgileDays,
			Servers: l.Servers, Clients: l.Clients,
		})
	}
	return out
}

// deltaSummary strips a window stream down to its observable decisions.
func deltaSummary(windows []WindowResult) []string {
	var out []string
	for _, w := range windows {
		for _, d := range w.Deltas {
			out = append(out, fmt.Sprintf("w%d %s L%d s%d c%d new%d",
				d.Window, d.Kind, d.Lineage, d.Servers, d.Clients, len(d.NewServers)))
		}
	}
	return out
}

// Replaying a 4-day world through the streaming engine with 1-day tumbling
// windows must reproduce the batch Detector + tracker loop exactly — same
// lineage count, same per-lineage server/client histories — and the worker
// pool size must change wall-clock only, never output.
func TestStreamMatchesBatchPipeline(t *testing.T) {
	world, err := synth.Generate(synth.Config{
		Name: "stream-eq", Seed: 7, Days: 4,
		Clients: 250, BenignServers: 600, MeanRequests: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	detOpts := []core.Option{
		core.WithSeed(1),
		core.WithWhois(world.Whois),
		core.WithProber(world.Prober),
	}

	// Batch reference: one Detector run per day trace, tracked across days.
	batch := tracker.New()
	det := core.New(detOpts...)
	for _, day := range world.Days {
		report, err := det.Run(day)
		if err != nil {
			t.Fatal(err)
		}
		batch.Observe(report)
	}
	want := snapshotLineages(batch)
	if len(want) == 0 {
		t.Fatal("batch reference produced no lineages; world too small to test equivalence")
	}

	var all []trace.Request
	for _, day := range world.Days {
		all = append(all, day.Requests...)
	}

	run := func(workers, shards int) ([]WindowResult, *Engine) {
		eng, err := New(Config{
			Window: 24 * time.Hour, Workers: workers, Shards: shards,
			Detector: detOpts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, eng, &SliceSource{Requests: all}), eng
	}

	windows1, eng1 := run(1, 1)
	if got := snapshotLineages(eng1.Tracker()); !reflect.DeepEqual(got, want) {
		t.Errorf("streamed lineages diverge from batch:\n got %+v\nwant %+v", got, want)
	}
	if len(windows1) != 4 {
		t.Errorf("windows = %d, want 4", len(windows1))
	}
	for i, w := range windows1 {
		if w.Empty() {
			t.Errorf("window %d unexpectedly empty", i)
		}
		wantStats := world.Days[i].ComputeStats()
		if w.Requests != wantStats.Requests {
			t.Errorf("window %d requests = %d, want %d", i, w.Requests, wantStats.Requests)
		}
		if w.Report.TraceStats.Servers != wantStats.Servers {
			t.Errorf("window %d servers = %d, want %d", i, w.Report.TraceStats.Servers, wantStats.Servers)
		}
	}

	// Per-day campaign sets must match the batch reports exactly.
	batchDet := core.New(detOpts...)
	for i, w := range windows1 {
		ref, err := batchDet.Run(world.Days[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(campaignKeys(ref), campaignKeys(w.Report)) {
			t.Errorf("window %d campaigns diverge from batch day %d", i, i)
		}
	}

	// More workers and shards: identical lineages and identical deltas.
	windows4, eng4 := run(4, 8)
	if got := snapshotLineages(eng4.Tracker()); !reflect.DeepEqual(got, want) {
		t.Error("worker pool size changed lineage output")
	}
	if !reflect.DeepEqual(deltaSummary(windows1), deltaSummary(windows4)) {
		t.Errorf("worker pool size changed delta stream:\n 1: %v\n 4: %v",
			deltaSummary(windows1), deltaSummary(windows4))
	}
}

func campaignKeys(r *core.Report) []string {
	var out []string
	for _, c := range r.AllCampaigns() {
		out = append(out, fmt.Sprintf("%v|%v", c.Servers, c.Clients))
	}
	return out
}

// The delta stream starts every lineage with an appear.
func TestDeltasStartWithAppear(t *testing.T) {
	world, err := synth.Generate(synth.Config{
		Name: "deltas", Seed: 11, Days: 2,
		Clients: 250, BenignServers: 600, MeanRequests: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []trace.Request
	for _, day := range world.Days {
		all = append(all, day.Requests...)
	}
	eng, err := New(Config{
		Window:   24 * time.Hour,
		Detector: []core.Option{core.WithSeed(1), core.WithWhois(world.Whois), core.WithProber(world.Prober)},
	})
	if err != nil {
		t.Fatal(err)
	}
	windows := collect(t, eng, &SliceSource{Requests: all})
	seen := make(map[int]bool)
	deltas := 0
	for _, w := range windows {
		for _, d := range w.Deltas {
			deltas++
			if !seen[d.Lineage] && d.Kind != Appear {
				t.Errorf("lineage %d first delta is %s, want appear", d.Lineage, d.Kind)
			}
			seen[d.Lineage] = true
			if d.KindName != d.Kind.String() {
				t.Errorf("KindName %q != Kind %q", d.KindName, d.Kind)
			}
		}
	}
	if deltas == 0 {
		t.Fatal("no deltas emitted over a 2-day malicious world")
	}
}

func TestMultiSource(t *testing.T) {
	a := &SliceSource{Requests: []trace.Request{evReq(at(9, 0), "c", "a.com", "/")}}
	b := &SliceSource{Requests: []trace.Request{
		evReq(at(9, 1), "c", "b.com", "/"),
		evReq(at(9, 2), "c", "c.com", "/"),
	}}
	m := &MultiSource{Sources: []Source{a, &SliceSource{}, b}}
	var hosts []string
	for {
		r, err := m.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, r.Host)
	}
	if !reflect.DeepEqual(hosts, []string{"a.com", "b.com", "c.com"}) {
		t.Errorf("hosts = %v", hosts)
	}
}

// dayEvents builds a simple two-day event feed: enough traffic per day for
// a non-empty detection window, with day 2 sealing day 1's window.
func dayEvents() []trace.Request {
	var all []trace.Request
	for day := 0; day < 2; day++ {
		for hour := 1; hour < 6; hour++ {
			for _, c := range []string{"c1", "c2", "c3"} {
				for _, h := range []string{"a.com", "b.com", "c.com"} {
					ts := time.Date(2011, 10, 1+day, hour, 0, 0, 0, time.UTC)
					all = append(all, evReq(ts, c, h, "/x"))
				}
			}
		}
	}
	return all
}

// TestStartContextCancelledUpFront: a context cancelled before Start acts
// as an immediate hard shutdown — the output channel still closes, every
// emitted window is report-less, and Err reports the context error.
func TestStartContextCancelledUpFront(t *testing.T) {
	eng, err := New(Config{Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	done := make(chan []WindowResult, 1)
	go func() {
		var out []WindowResult
		for r := range eng.StartContext(ctx, &SliceSource{Requests: dayEvents()}) {
			out = append(out, r)
		}
		done <- out
	}()
	select {
	case out := <-done:
		for _, w := range out {
			if w.Report != nil {
				t.Errorf("window %d carries a report despite cancelled context", w.Seq)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("output channel did not close under a cancelled context")
	}
	if err := eng.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
}

// slowDim parks the first Build until released, signalling when detection
// has reached it; later builds pass straight through.
type slowDim struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (d *slowDim) Name() string { return "slowdim" }

func (d *slowDim) Build(idx *trace.Index) *similarity.ServerGraph {
	d.once.Do(func() { close(d.started) })
	<-d.release
	return similarity.BuildUserAgentGraph(idx, similarity.Options{})
}

// TestStartContextCancelsInFlightDetection cancels the run context while a
// window's mining stage is blocked inside a dimension build: the engine
// must abort that detection (report-less window), close the output
// promptly, and surface ctx.Err().
func TestStartContextCancelsInFlightDetection(t *testing.T) {
	slow := &slowDim{started: make(chan struct{}), release: make(chan struct{})}
	eng, err := New(Config{
		Window:   24 * time.Hour,
		Workers:  1,
		Detector: []core.Option{core.WithSeed(1), core.WithExtraDimension(slow)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan []WindowResult, 1)
	go func() {
		var out []WindowResult
		for r := range eng.StartContext(ctx, &SliceSource{Requests: dayEvents()}) {
			out = append(out, r)
		}
		done <- out
	}()

	select {
	case <-slow.started:
	case <-time.After(30 * time.Second):
		t.Fatal("detection never reached the blocking dimension")
	}
	cancel()
	close(slow.release)

	select {
	case out := <-done:
		if len(out) == 0 {
			t.Fatal("no windows emitted")
		}
		for _, w := range out {
			if w.Report != nil {
				t.Errorf("window %d carries a report despite mid-detection cancel", w.Seq)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("output channel did not close after cancellation")
	}
	if err := eng.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
}

// TestStopStillDrainsGracefully guards the Stop/cancel distinction: Stop
// without context cancellation lets in-flight detections finish and their
// windows keep their reports.
func TestStopStillDrainsGracefully(t *testing.T) {
	slow := &slowDim{started: make(chan struct{}), release: make(chan struct{})}
	eng, err := New(Config{
		Window:   24 * time.Hour,
		Workers:  1,
		Detector: []core.Option{core.WithSeed(1), core.WithExtraDimension(slow)},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []WindowResult, 1)
	go func() {
		var out []WindowResult
		for r := range eng.StartContext(context.Background(), &SliceSource{Requests: dayEvents()}) {
			out = append(out, r)
		}
		done <- out
	}()

	select {
	case <-slow.started:
	case <-time.After(30 * time.Second):
		t.Fatal("detection never reached the blocking dimension")
	}
	eng.Stop()
	close(slow.release)

	select {
	case out := <-done:
		if len(out) == 0 {
			t.Fatal("no windows emitted")
		}
		if out[0].Report == nil {
			t.Error("graceful Stop dropped the in-flight window's report")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("output channel did not close after Stop")
	}
	if err := eng.Err(); err != nil {
		t.Errorf("Err() = %v, want nil after graceful Stop", err)
	}
}

// recordingSink captures window sequence numbers and can inject an error.
type recordingSink struct {
	seqs     []int
	errOn    int           // window seq to fail on; -1 disables
	consumed chan struct{} // if non-nil, signalled per Consume
}

func (s *recordingSink) Consume(w *WindowResult) error {
	s.seqs = append(s.seqs, w.Seq)
	if s.consumed != nil {
		s.consumed <- struct{}{}
	}
	if w.Seq == s.errOn {
		return fmt.Errorf("sink boom on window %d", w.Seq)
	}
	return nil
}

// Sinks see every window, in order, before the channel reader does, and
// sink output matches channel output exactly.
func TestSinkSeesWindowsInOrder(t *testing.T) {
	sink := &recordingSink{errOn: -1}
	eng, err := New(Config{Window: 24 * time.Hour, Workers: 2, Sinks: []Sink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, eng, &SliceSource{Requests: dayEvents()})
	if len(got) == 0 {
		t.Fatal("no windows")
	}
	if len(sink.seqs) != len(got) {
		t.Fatalf("sink saw %d windows, channel %d", len(sink.seqs), len(got))
	}
	for i := range got {
		if sink.seqs[i] != got[i].Seq {
			t.Errorf("sink order %v != channel order", sink.seqs)
			break
		}
	}
}

// A failing sink surfaces through Err but does not stop the stream.
func TestSinkErrorDoesNotStopStream(t *testing.T) {
	sink := &recordingSink{errOn: 0}
	eng, err := New(Config{Window: 24 * time.Hour, Sinks: []Sink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	var got []WindowResult
	for r := range eng.Start(&SliceSource{Requests: dayEvents()}) {
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("windows = %d, want 2 (stream must continue past sink error)", len(got))
	}
	if err := eng.Err(); err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Errorf("Err() = %v, want sink error", err)
	}
}

// Stats is safe and monotonic while the engine runs.
func TestStatsReadableLive(t *testing.T) {
	sink := &recordingSink{errOn: -1, consumed: make(chan struct{})}
	eng, err := New(Config{Window: 24 * time.Hour, Sinks: []Sink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	out := eng.Start(&SliceSource{Requests: dayEvents()})
	<-sink.consumed // unblock window 0's emit
	first := <-out  // sent after the counter increment: Windows >= 1...
	// ...while window 1's emit is parked in Consume before its increment,
	// so exactly 1.
	mid := eng.Stats()
	if first.Seq != 0 || mid.Windows != 1 {
		t.Errorf("live Windows = %d, want 1", mid.Windows)
	}
	if mid.Events == 0 {
		t.Error("live Events = 0")
	}
	go func() {
		for range sink.consumed {
		}
	}()
	for range out {
	}
	close(sink.consumed)
	final := eng.Stats()
	if final.Windows != 2 || final.Events < mid.Events {
		t.Errorf("final stats regressed: %+v vs %+v", final, mid)
	}
}

// KeepIndex publishes each window's merged index; IndexOnly additionally
// skips detection and the tracker, and both agree with a scratch build of
// the window's events.
func TestKeepIndexAndIndexOnly(t *testing.T) {
	events := []trace.Request{
		evReq(at(0, 10), "c1", "a.com", "/x"),
		evReq(at(0, 20), "c2", "b.com", "/y"),
		evReq(at(1, 10), "c1", "c.com", "/z"),
	}
	want := trace.BuildIndex(&trace.Trace{Requests: events[:2]})

	for _, cfg := range []Config{
		{Window: time.Hour, KeepIndex: true},
		{Window: time.Hour, IndexOnly: true},
	} {
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wins := collect(t, eng, &SliceSource{Requests: events})
		if len(wins) != 2 {
			t.Fatalf("windows = %d, want 2", len(wins))
		}
		if wins[0].Index == nil {
			t.Fatal("window emitted without index")
		}
		if got := wins[0].Index.Fingerprint(); got != want.Fingerprint() {
			t.Errorf("window index diverged from scratch build:\n%s", got)
		}
		if cfg.IndexOnly {
			if wins[0].Report != nil || wins[0].Matches != nil {
				t.Error("IndexOnly window carries detection output")
			}
			if len(eng.Tracker().Lineages()) != 0 {
				t.Error("IndexOnly fed the tracker")
			}
		} else if wins[0].Report == nil {
			t.Error("KeepIndex window lost its report")
		}
	}
}

// Without KeepIndex the index is not retained on results.
func TestIndexNotKeptByDefault(t *testing.T) {
	eng, err := New(Config{Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	wins := collect(t, eng, &SliceSource{Requests: []trace.Request{evReq(at(0, 1), "c1", "a.com", "/x")}})
	if len(wins) != 1 || wins[0].Index != nil {
		t.Errorf("index retained without KeepIndex")
	}
}
