package stream

import (
	"fmt"
	"strings"
	"time"

	"smash/internal/campaign"
	"smash/internal/core"
	"smash/internal/trace"
	"smash/internal/tracker"
)

// WindowResult is the engine's output for one sealed window, emitted in
// window order.
type WindowResult struct {
	// Seq numbers emitted windows from 0.
	Seq int
	// Start and End bound the window's half-open interval [Start, End).
	Start, End time.Time
	// Requests is the number of indexed requests in the window.
	Requests int
	// Report is the detection report; nil for empty windows.
	Report *core.Report
	// Matches are the tracker's lineage assignments, aligned with
	// Report.AllCampaigns().
	Matches []tracker.Match
	// Deltas describe how each campaign moved its lineage this window.
	Deltas []Delta
	// Index is the window's merged traffic index, populated only under
	// Config.KeepIndex or Config.IndexOnly. Read-only: it is shared with
	// every sink and may alias engine-internal state.
	Index *trace.Index
}

// Empty reports whether the window contained no events.
func (w *WindowResult) Empty() bool { return w.Requests == 0 }

// Render formats the window as a one-line summary.
func (w *WindowResult) Render() string {
	campaigns := 0
	if w.Report != nil {
		campaigns = len(w.Report.Campaigns) + len(w.Report.SingleClientCampaigns)
	}
	return fmt.Sprintf("window %d [%s .. %s) requests=%d campaigns=%d",
		w.Seq, w.Start.Format(time.RFC3339), w.End.Format(time.RFC3339),
		w.Requests, campaigns)
}

// DeltaKind classifies how a campaign moved its lineage in one window.
type DeltaKind int

// Delta kinds.
const (
	// Appear means a new lineage was born: a campaign with no overlap to
	// any known lineage.
	Appear DeltaKind = iota + 1
	// Persist means the campaign continued a lineage keeping most of its
	// server pool.
	Persist
	// Rotate means the lineage's infected clients reappeared behind a
	// mostly new server pool — the paper's agile campaign signature
	// (§V-B).
	Rotate
	// Retire means the tracker retired the lineage this window: it had
	// been idle for more than the RetireAfter policy, its member history
	// was pruned and it no longer participates in matching. Emitted only
	// when retirement is enabled (RetireAfter > 0).
	Retire
)

// String names the delta kind.
func (k DeltaKind) String() string {
	switch k {
	case Appear:
		return "appear"
	case Persist:
		return "persist"
	case Rotate:
		return "rotate"
	case Retire:
		return "retire"
	default:
		return "unknown"
	}
}

// Delta is one campaign-lineage transition observed in a window.
type Delta struct {
	// Window is the emitting window's Seq.
	Window int `json:"window"`
	// Kind is the transition type.
	Kind DeltaKind `json:"-"`
	// KindName is Kind's name (for JSON output).
	KindName string `json:"kind"`
	// Lineage is the tracker lineage ID the campaign joined.
	Lineage int `json:"lineage"`
	// Campaign is the campaign's activity classification.
	Campaign string `json:"campaign"`
	// Servers and Clients size the campaign this window.
	Servers int `json:"servers"`
	Clients int `json:"clients"`
	// NewServers lists servers the lineage had never seen before.
	NewServers []string `json:"newServers,omitempty"`
	// ServerOverlap is the fraction of the campaign's servers already
	// known to the lineage.
	ServerOverlap float64 `json:"serverOverlap"`
}

// Render formats the delta for the text UI.
func (d *Delta) Render() string {
	if d.Kind == Retire {
		return fmt.Sprintf("%-7s lineage %d [idle]", d.Kind, d.Lineage)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s lineage %d [%s] servers=%d clients=%d overlap=%.2f",
		d.Kind, d.Lineage, d.Campaign, d.Servers, d.Clients, d.ServerOverlap)
	if len(d.NewServers) > 0 {
		fmt.Fprintf(&b, " new=%d", len(d.NewServers))
	}
	return b.String()
}

// DeltasFor classifies every tracker match of one window into deltas.
// campaigns must be the report's AllCampaigns() slice the matches were
// produced from. Exported for consumers that drive a tracker outside the
// engine — internal/cluster's aggregator reuses it so cluster runs emit
// exactly the deltas a single-node run would.
func DeltasFor(window int, campaigns []campaign.Campaign, matches []tracker.Match) []Delta {
	var out []Delta
	for i := range matches {
		out = append(out, makeDelta(window, &campaigns[i], matches[i]))
	}
	return out
}

// RetireDeltas converts the tracker's per-window retirement list
// (Tracker.RetiredNow) into retire deltas. Retirement happens before the
// window's campaigns are matched, so these precede the window's other
// deltas. Shared by the engine and the cluster aggregator for parity.
func RetireDeltas(window int, ids []int) []Delta {
	if len(ids) == 0 {
		return nil
	}
	out := make([]Delta, 0, len(ids))
	for _, id := range ids {
		out = append(out, Delta{
			Window:   window,
			Kind:     Retire,
			KindName: Retire.String(),
			Lineage:  id,
		})
	}
	return out
}

// makeDelta classifies one tracker match. The lineage has already absorbed
// the campaign, so a server seen exactly once by the lineage is new this
// window.
func makeDelta(window int, c *campaign.Campaign, m tracker.Match) Delta {
	kind := Persist
	switch {
	case m.Kind == tracker.MatchNew:
		kind = Appear
	case m.Kind == tracker.MatchClients && m.ServerOverlap < 0.5:
		kind = Rotate
	}
	var fresh []string
	for _, s := range c.Servers {
		if m.Lineage.Servers[s] == 1 {
			fresh = append(fresh, s)
		}
	}
	return Delta{
		Window:        window,
		Kind:          kind,
		KindName:      kind.String(),
		Lineage:       m.Lineage.ID,
		Campaign:      c.Kind.String(),
		Servers:       len(c.Servers),
		Clients:       len(c.Clients),
		NewServers:    fresh,
		ServerOverlap: m.ServerOverlap,
	}
}
