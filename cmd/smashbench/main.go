// Command smashbench regenerates every table and figure of the paper's
// evaluation over the synthetic worlds (see DESIGN.md for the per-experiment
// index) and writes one consolidated report.
//
// Usage:
//
//	smashbench [-scale 1.0] [-seed 42] [-out report.txt]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -scale < 1 shrinks the worlds proportionally for quick runs; absolute
// counts then shrink too, but the shapes the paper reports (who wins, FP
// monotonicity, dimension dominance) persist. -cpuprofile/-memprofile
// capture pprof profiles of the whole run for hot-path analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"smash/internal/core"
	"smash/internal/eval"
	"smash/internal/profiling"
	"smash/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smashbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smashbench", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", 1.0, "world scale factor (clients/servers)")
		seed       = fs.Int64("seed", 42, "generation seed")
		outPath    = fs.String("out", "", "also write the report to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	out := stdout
	var file *os.File
	if *outPath != "" {
		var err error
		file, err = os.Create(*outPath)
		if err != nil {
			return err
		}
		defer file.Close()
		out = io.MultiWriter(stdout, file)
	}

	start := time.Now()
	envs, err := buildEnvs(*scale, *seed)
	if err != nil {
		return err
	}
	day2011, day2012, week := envs[0], envs[1], envs[2]
	// One timing observer across every experiment: the end of the report
	// says where pipeline time went, stage by stage.
	timing := core.NewTimingObserver()
	for _, env := range envs {
		env.ExtraOptions = []core.Option{core.WithObserver(timing)}
	}
	fmt.Fprintf(out, "SMASH evaluation report (scale=%.2f seed=%d)\n", *scale, *seed)
	fmt.Fprintf(out, "generated worlds in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Fprintln(out, eval.TableI(day2011, day2012, week))

	for _, step := range []struct {
		name string
		fn   func() (fmt.Stringer, error)
	}{
		{"Table II", tableFn(func() (*eval.Table, error) { return eval.TableII(day2011, day2012) })},
		{"Table III", tableFn(func() (*eval.Table, error) { return eval.TableIII(day2011, day2012) })},
		{"Table IV", tableFn(func() (*eval.Table, error) { return eval.TableIV(day2011) })},
		{"Table V", tableFn(func() (*eval.Table, error) { return eval.TableV(week) })},
		{"Table VI", tableFn(func() (*eval.Table, error) { return eval.TableVI(week) })},
		{"Table XI", tableFn(func() (*eval.Table, error) { return eval.TableXI(day2011, day2012) })},
		{"Table XII", tableFn(func() (*eval.Table, error) { return eval.TableXII(day2011, day2012) })},
		{"Figure 6", renderFn(func() (renderer, error) { return eval.BuildFigure6(day2011) })},
		{"Figure 7", renderFn(func() (renderer, error) { return eval.BuildFigure7(week) })},
		{"Figure 8", renderFn(func() (renderer, error) { return eval.BuildFigure8(day2011) })},
		{"Figure 9", renderFn(func() (renderer, error) { return eval.BuildFigure9(day2011) })},
		{"Figure 10", renderFn(func() (renderer, error) { return eval.BuildFigure10(day2011) })},
		{"Main dimension study", renderFn(func() (renderer, error) { return eval.BuildMainDimensionStudy(day2011) })},
	} {
		t0 := time.Now()
		result, err := step.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", step.name, err)
		}
		fmt.Fprintln(out, result.String())
		fmt.Fprintf(out, "  [%s computed in %v]\n\n", step.name, time.Since(t0).Round(time.Millisecond))
	}

	for _, name := range eval.PaperCaseStudies() {
		cs, err := eval.BuildCaseStudy(day2011, name)
		if err != nil {
			return fmt.Errorf("case study %s: %w", name, err)
		}
		fmt.Fprintln(out, cs.Render())
	}

	report, err := day2011.Run(0, 0.8, 1.0)
	if err != nil {
		return err
	}
	rec := day2011.Recall(0, report)
	fmt.Fprintf(out, "Headline: SMASH detected %d of %d ground-truth campaign servers; IDS2013 knew %d, blacklists %d (%.1fx the oracles combined)\n",
		rec.Detected, rec.TruthServers, rec.IDSDetected, rec.BlacklistDetected,
		safeRatio(rec.Detected, rec.IDSDetected+rec.BlacklistDetected))

	missed, err := eval.FalseNegatives(day2011, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "False negatives (IDS-labelled servers SMASH missed): %d threat groups\n", len(missed))
	for threat, servers := range missed {
		fmt.Fprintf(out, "  %-24s %d servers\n", threat, len(servers))
	}
	fmt.Fprintf(out, "\n%s", timing.Render())
	fmt.Fprintf(out, "\ntotal runtime %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func safeRatio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// renderer is anything with a Render method (the eval result types).
type renderer interface{ Render() string }

type stringerAdapter struct{ s string }

func (a stringerAdapter) String() string { return a.s }

func tableFn(fn func() (*eval.Table, error)) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) {
		t, err := fn()
		if err != nil {
			return nil, err
		}
		return stringerAdapter{t.Render()}, nil
	}
}

func renderFn(fn func() (renderer, error)) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		return stringerAdapter{r.Render()}, nil
	}
}

// buildEnvs creates the three dataset environments at the given scale.
func buildEnvs(scale float64, seed int64) ([3]*eval.Env, error) {
	var out [3]*eval.Env
	for i, name := range []string{"Data2011day", "Data2012day", "Data2012week"} {
		cfg := synth.DayProfile(name, seed)
		cfg.Clients = scaled(cfg.Clients, scale, 200)
		cfg.BenignServers = scaled(cfg.BenignServers, scale, 600)
		env, err := eval.NewEnvFromConfig(cfg)
		if err != nil {
			return out, err
		}
		out[i] = env
	}
	return out, nil
}

func scaled(v int, scale float64, min int) int {
	s := int(float64(v) * scale)
	if s < min {
		s = min
	}
	return s
}
