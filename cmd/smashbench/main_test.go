package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run")
	}
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.2", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table IV", "Table V",
		"Table VI", "Table XI", "Table XII",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Case study", "Headline", "Main dimension study",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}
