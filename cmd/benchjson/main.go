// Command benchjson converts `go test -bench` output into the repo's
// machine-readable bench-trajectory format: a JSON document listing, per
// benchmark, iterations, ns/op, allocs/op, B/op and any custom metrics
// (events/s, recall, ...). The CI bench job pipes the benchmark run
// through it and publishes BENCH_<pr>.json so the performance trajectory
// of the project accumulates one snapshot per PR.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 1x -benchmem . | benchjson -out BENCH_4.json
//
// Lines that are not benchmark results (headers, PASS/ok) populate the env
// block or are ignored, so the raw `go test` stream can be piped in
// unfiltered. benchjson exits nonzero when the stream contains no
// benchmark results at all — a run that failed to build or bench produces
// no silent empty trajectory entry.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_op"`
	BytesOp  *float64           `json:"b_op,omitempty"`
	AllocsOp *float64           `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted file.
type Document struct {
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(lines *bufio.Scanner) (*Document, error) {
	doc := &Document{Env: map[string]string{}}
	for lines.Scan() {
		line := strings.TrimRight(lines.Text(), "\r\n")
		for _, envKey := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, envKey+": "); ok {
				doc.Env[envKey] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark"), Iters: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesOp = &val
			case "allocs/op":
				res.AllocsOp = &val
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = val
			}
		}
		doc.Results = append(doc.Results, res)
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark results in input")
	}
	return doc, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	doc, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
