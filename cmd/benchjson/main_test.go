package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: smash
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamThroughput/sliding          	       2	3788274749 ns/op	     25958 events/s	1535490940 B/op	 2404627 allocs/op
BenchmarkTableI-8                	       2	  62089336 ns/op	21754920 B/op	  510988 allocs/op
PASS
ok  	smash	15.031s
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] == "" {
		t.Errorf("env = %v", doc.Env)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "StreamThroughput/sliding" || r.Iters != 2 {
		t.Errorf("result 0 = %+v", r)
	}
	if r.NsPerOp != 3788274749 {
		t.Errorf("ns_op = %g", r.NsPerOp)
	}
	if r.Metrics["events/s"] != 25958 {
		t.Errorf("events/s = %g", r.Metrics["events/s"])
	}
	if r.AllocsOp == nil || *r.AllocsOp != 2404627 {
		t.Errorf("allocs_op = %v", r.AllocsOp)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if doc.Results[1].Name != "TableI" {
		t.Errorf("result 1 name = %q", doc.Results[1].Name)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok smash 1s\n"))); err == nil {
		t.Error("empty benchmark stream accepted")
	}
}
