// Command tracegen generates a synthetic ISP world — traces, ground truth
// and whois records — to disk, for driving cmd/smash and external analyses.
//
// Usage:
//
//	tracegen -out dir [-profile Data2011day] [-seed 42]
//	         [-clients N] [-servers N] [-days N] [-sort-by-time]
//	         [-partitions N] [-log-format common|combined|jsonl]
//
// For each day it writes dayN.tsv in the trace TSV format, plus truth.json
// (ground-truth manifest) and whois.json (registration database).
// -sort-by-time orders each day's records by timestamp (stable, so records
// sharing a timestamp keep their generation order) — guaranteeing the TSVs
// replay through cmd/smashd in arrival order.
//
// -log-format additionally writes each day as dayN.<format>.log in an
// access-log grammar (internal/source): Apache/Nginx common or combined,
// or jsonl. The log carries the same traffic projected onto what the
// format can represent (second-resolution timestamps, no payload digest
// in the access-log grammars), so `smashd -format combined dayN.combined.log`
// sees exactly what `smashd dayN.tsv` would after the same projection —
// the basis of the ingestion equivalence tests.
//
// -partitions N additionally writes dayD.pK.tsv files (K in 0..N-1)
// holding each day's requests split by client-id hash with the cluster's
// partitioning function (internal/cluster.PartitionOf), preserving record
// order within each partition. Feeding dayD.pK.tsv to the K-th
// smashd -role ingest node replays the exact partition a -shard-of K/N
// filter would keep, which is how multi-node demos and the scale-out
// equivalence tests generate their inputs with one command.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"smash/internal/cluster"
	"smash/internal/source"
	"smash/internal/synth"
	"smash/internal/trace"
	"smash/internal/whois"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", "", "output directory (required)")
		profile = fs.String("profile", "Data2011day", "dataset profile (Data2011day, Data2012day, Data2012week)")
		seed    = fs.Int64("seed", 42, "generation seed")
		clients = fs.Int("clients", 0, "override client count")
		servers = fs.Int("servers", 0, "override benign server count")
		days    = fs.Int("days", 0, "override day count")
		byTime  = fs.Bool("sort-by-time", false, "sort each day's records by timestamp (stable) for streaming replay")
		parts   = fs.Int("partitions", 0, "also write dayN.pK.tsv files hash-partitioned by client id (0 disables)")
		logFmt  = fs.String("log-format", "", "also write each day as dayN.<format>.log (common, combined or jsonl) plus the projected dayN.<format>.tsv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("-out is required")
	}
	if *parts < 0 {
		return fmt.Errorf("-partitions must be >= 0")
	}
	cfg := synth.DayProfile(*profile, *seed)
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *servers > 0 {
		cfg.BenignServers = *servers
	}
	if *days > 0 {
		cfg.Days = *days
	}

	var logFormat source.Format
	if *logFmt != "" {
		f, err := source.New(*logFmt, source.Options{})
		if err != nil {
			return err
		}
		logFormat = f
	}

	world, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for i, day := range world.Days {
		if *byTime {
			sortByTime(day)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("day%d.tsv", i+1))
		if err := writeTrace(path, day); err != nil {
			return err
		}
		stats := day.ComputeStats()
		fmt.Fprintf(out, "wrote %s: %s\n", path, stats.Render())
		if logFormat != nil {
			base := filepath.Join(*outDir, fmt.Sprintf("day%d.%s", i+1, *logFmt))
			if err := writeAccessLog(base+".log", logFormat, day); err != nil {
				return err
			}
			// The projection rendered as TSV: replaying it is equivalent by
			// construction to parsing the access log, which is what the
			// ingestion equivalence tests assert.
			if err := writeTrace(base+".tsv", projectTrace(logFormat, day)); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s.log and %s.tsv (%s access-log projection)\n", base, base, *logFmt)
		}
		for k := 0; k < *parts; k++ {
			part := partition(day, k, *parts)
			ppath := filepath.Join(*outDir, fmt.Sprintf("day%d.p%d.tsv", i+1, k))
			if err := writeTrace(ppath, part); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s: %d requests (partition %d/%d)\n",
				ppath, len(part.Requests), k, *parts)
		}
	}
	if err := writeJSON(filepath.Join(*outDir, "truth.json"), world.Truth); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*outDir, "whois.json"), whoisRecords(world.Whois)); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote ground truth for %d campaigns, %d labelled servers\n",
		len(world.Truth.Campaigns), len(world.Truth.Servers))
	return nil
}

// sortByTime orders requests by timestamp. The sort is stable, so records
// sharing a timestamp keep their generation order as the tie-break — the
// output is deterministic for a fixed seed.
func sortByTime(t *trace.Trace) {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Time.Before(t.Requests[j].Time)
	})
}

// partition keeps the requests whose client hashes to partition k of n,
// preserving record order — the file-level equivalent of smashd's
// -shard-of filter.
func partition(t *trace.Trace, k, n int) *trace.Trace {
	out := &trace.Trace{Name: fmt.Sprintf("%s.p%d", t.Name, k)}
	for i := range t.Requests {
		if cluster.PartitionOf(t.Requests[i].Client, n) == k {
			out.Requests = append(out.Requests, t.Requests[i])
		}
	}
	return out
}

// projectTrace maps a trace onto what an access-log format can carry —
// the events a round trip through that format preserves.
func projectTrace(f source.Format, t *trace.Trace) *trace.Trace {
	out := &trace.Trace{Name: t.Name, Requests: make([]trace.Request, len(t.Requests))}
	for i := range t.Requests {
		out.Requests[i] = f.Project(t.Requests[i])
	}
	return out
}

// writeAccessLog renders each (projected) request as one line of the
// access-log format.
func writeAccessLog(path string, f source.Format, t *trace.Trace) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(file, 1<<16)
	var buf []byte
	for i := range t.Requests {
		r := f.Project(t.Requests[i])
		buf = f.Append(buf[:0], &r)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			file.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func writeTrace(path string, t *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteTrace(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func whoisRecords(reg *whois.MapRegistry) []whois.Record {
	domains := reg.Domains()
	out := make([]whois.Record, 0, len(domains))
	for _, d := range domains {
		if rec, ok := reg.Lookup(d); ok {
			out = append(out, rec)
		}
	}
	return out
}
