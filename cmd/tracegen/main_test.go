package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smash/internal/cluster"
	"smash/internal/trace"
)

func TestRunGeneratesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-out", dir, "-profile", "Data2011day", "-seed", "5",
		"-clients", "250", "-servers", "600",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "day1.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) < 1000 {
		t.Errorf("trace too small: %d requests", len(tr.Requests))
	}
	for _, f := range []string{"truth.json", "whois.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunMultiDay(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-out", dir, "-seed", "5", "-days", "2",
		"-clients", "250", "-servers", "600",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"day1.tsv", "day2.tsv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
}

func TestRunSortByTime(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-out", dir, "-seed", "5", "-sort-by-time",
		"-clients", "250", "-servers", "600",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "day1.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time.Before(tr.Requests[i-1].Time) {
			t.Fatalf("record %d out of order: %v before %v",
				i, tr.Requests[i].Time, tr.Requests[i-1].Time)
		}
	}
}

// -partitions writes per-partition day files that are disjoint, ordered,
// and together reconstruct the full day exactly — partitioned by the
// cluster's client-hash function.
func TestRunPartitions(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-out", dir, "-seed", "5", "-sort-by-time", "-partitions", "2",
		"-clients", "250", "-servers", "600",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	read := func(name string) *trace.Trace {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	full := read("day1.tsv")
	p0, p1 := read("day1.p0.tsv"), read("day1.p1.tsv")
	if len(p0.Requests) == 0 || len(p1.Requests) == 0 {
		t.Fatalf("degenerate partitions: %d + %d", len(p0.Requests), len(p1.Requests))
	}
	if len(p0.Requests)+len(p1.Requests) != len(full.Requests) {
		t.Fatalf("partitions cover %d of %d requests",
			len(p0.Requests)+len(p1.Requests), len(full.Requests))
	}
	for _, r := range p0.Requests {
		if cluster.PartitionOf(r.Client, 2) != 0 {
			t.Fatalf("p0 leaked client %q", r.Client)
		}
	}
	// Merging the partition indexes reproduces the full day's aggregate.
	merged := trace.NewIndex()
	merged.Merge(trace.BuildIndex(p0))
	merged.Merge(trace.BuildIndex(p1))
	if merged.Fingerprint() != trace.BuildIndex(full).Fingerprint() {
		t.Error("partition merge diverged from full-day index")
	}

	if err := run([]string{"-out", dir, "-partitions", "-1"}, &out); err == nil {
		t.Error("negative -partitions accepted")
	}
}
