package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smash/internal/synth"
	"smash/internal/trace"
)

// writeWorld materializes a small multi-day world as day TSVs.
func writeWorld(t *testing.T, days int) (string, []string) {
	t.Helper()
	world, err := synth.Generate(synth.Config{
		Name: "smashd-test", Seed: 9, Days: days,
		Clients: 250, BenignServers: 600, MeanRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for i, day := range world.Days {
		p := filepath.Join(dir, "day.tsv")
		if days > 1 {
			p = filepath.Join(dir, "day"+string(rune('1'+i))+".tsv")
		}
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteTrace(f, day); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return dir, paths
}

func TestRunReplaysDayFiles(t *testing.T) {
	_, paths := writeWorld(t, 2)
	var out bytes.Buffer
	args := append([]string{"-window", "24h", "-workers", "2"}, paths...)
	if err := run(context.Background(), args, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "window 0 [") || !strings.Contains(text, "window 1 [") {
		t.Errorf("missing window lines:\n%s", text)
	}
	if !strings.Contains(text, "appear") {
		t.Errorf("no appear deltas over a malicious world:\n%s", text)
	}
	if !strings.Contains(text, "lineages over 2 day(s)") {
		t.Errorf("missing tracker summary:\n%s", text)
	}
}

func TestRunStdinJSON(t *testing.T) {
	_, paths := writeWorld(t, 1)
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-json", "-window", "24h"}, bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 { // one window + trailing stats record
		t.Fatalf("JSON lines = %d, want 2:\n%s", len(lines), out.String())
	}
	var rec struct {
		Window    int `json:"window"`
		Requests  int `json:"requests"`
		Campaigns int `json:"campaigns"`
		Deltas    []struct {
			Kind    string `json:"kind"`
			Lineage int    `json:"lineage"`
		} `json:"deltas"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad window JSON: %v\n%s", err, lines[0])
	}
	if rec.Requests == 0 || rec.Campaigns == 0 || len(rec.Deltas) == 0 {
		t.Errorf("degenerate window record: %+v", rec)
	}
	var stats struct {
		Events   int `json:"events"`
		Windows  int `json:"windows"`
		Lineages int `json:"lineages"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &stats); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, lines[1])
	}
	if stats.Events == 0 || stats.Windows != 1 || stats.Lineages == 0 {
		t.Errorf("degenerate stats record: %+v", stats)
	}
}

func TestRunSlidingWindows(t *testing.T) {
	// Two events 12 hours apart: with a 24h window sliding by 12h the
	// second event overlaps two windows.
	tr := &trace.Trace{Name: "sliding"}
	base := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	for i, h := range []int{1, 13} {
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   base.Add(time.Duration(h) * time.Hour),
			Client: "c1", Host: "a.com", ServerIP: "9.9.9.9",
			Path: "/x" + string(rune('0'+i)), Status: 200,
		})
	}
	p := filepath.Join(t.TempDir(), "sliding.tsv")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-window", "24h", "-stride", "12h", p}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window 1 [") {
		t.Errorf("expected a second sliding window:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "into 2 windows") {
		t.Errorf("expected 2 windows total:\n%s", out.String())
	}
}

// summaryOf extracts the tracker summary block from smashd text output.
func summaryOf(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "tracker:")
	if i < 0 {
		t.Fatalf("no tracker summary in output:\n%s", out)
	}
	return out[i:]
}

// A run with -state-dir, restarted on the remaining day files, ends with
// exactly the lineage summary of an uninterrupted run over all days.
func TestRunStateDirResume(t *testing.T) {
	_, paths := writeWorld(t, 4)

	var full bytes.Buffer
	if err := run(context.Background(), append([]string{"-window", "24h"}, paths...), nil, &full); err != nil {
		t.Fatal(err)
	}
	want := summaryOf(t, full.String())

	stateDir := filepath.Join(t.TempDir(), "state")
	var out1 bytes.Buffer
	args1 := append([]string{"-window", "24h", "-state-dir", stateDir}, paths[:2]...)
	if err := run(context.Background(), args1, nil, &out1); err != nil {
		t.Fatal(err)
	}

	var out2 bytes.Buffer
	args2 := append([]string{"-window", "24h", "-state-dir", stateDir}, paths[2:]...)
	if err := run(context.Background(), args2, nil, &out2); err != nil {
		t.Fatal(err)
	}
	if got := summaryOf(t, out2.String()); got != want {
		t.Errorf("resumed summary diverged:\n%s\nvs uninterrupted:\n%s", got, want)
	}
	if !strings.Contains(out2.String(), "over 4 day(s)") {
		t.Errorf("resumed run lost the window clock:\n%s", out2.String())
	}
}

// -listen serves live lineage state while windows are still being
// detected, and the server shuts down cleanly when the stream drains.
func TestRunListenServesLiveState(t *testing.T) {
	_, paths := writeWorld(t, 2)
	day1, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	day2, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	onListen = func(a net.Addr) { addrCh <- a.String() }
	defer func() { onListen = nil }()

	pr, pw := io.Pipe()
	runErr := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		runErr <- run(context.Background(), []string{"-window", "24h", "-listen", "127.0.0.1:0"}, pr, &out)
	}()

	// Feed both days and keep the pipe open: day 2's events push the
	// watermark past day 1's window, so window 0 is detected and served
	// while the stream is still live.
	if _, err := pw.Write(append(day1, day2...)); err != nil {
		t.Fatal(err)
	}
	addr := <-addrCh

	deadline := time.Now().Add(30 * time.Second)
	var count int
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/lineages")
		if err == nil {
			var body struct {
				Count int `json:"count"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil && body.Count > 0 {
				count = body.Count
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if count == 0 {
		t.Error("no lineages served while the stream was live")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"smash_store_windows_total 1", "smash_pipeline_stage_runs_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("live metrics missing %q", want)
		}
	}

	pw.Close() // EOF: drain remaining windows, shut the server down
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lineages over 2 day(s)") {
		t.Errorf("missing final summary:\n%s", out.String())
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after run returned")
	}
}

// -retire-after threads the retirement policy into the daemon's tracker.
func TestRunRetireAfterFlag(t *testing.T) {
	// One active day followed by three empty ones: a 24h window with
	// -retire-after 1 retires the day-1 lineages once the gap exceeds one
	// window.
	world, err := synth.Generate(synth.Config{
		Name: "retire-test", Seed: 9, Days: 1,
		Clients: 250, BenignServers: 600, MeanRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	day := world.Days[0]
	last := day.Requests[len(day.Requests)-1]
	for i := 1; i <= 3; i++ {
		probe := last
		probe.Time = last.Time.Add(time.Duration(i) * 24 * time.Hour)
		probe.Client = "straggler"
		day.Requests = append(day.Requests, probe)
	}
	p := filepath.Join(t.TempDir(), "retire.tsv")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, day); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-window", "24h", "-retire-after", "1", p}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "retired") {
		t.Errorf("no lineage retired:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, nil, &out); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run(context.Background(), []string{"-window", "0s"}, strings.NewReader(""), &out); err == nil {
		t.Error("zero window accepted")
	}
	if err := run(context.Background(), []string{"/nonexistent/trace.tsv"}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}
