package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smash/internal/synth"
	"smash/internal/trace"
)

// writeWorld materializes a small multi-day world as day TSVs.
func writeWorld(t *testing.T, days int) (string, []string) {
	t.Helper()
	world, err := synth.Generate(synth.Config{
		Name: "smashd-test", Seed: 9, Days: days,
		Clients: 250, BenignServers: 600, MeanRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for i, day := range world.Days {
		p := filepath.Join(dir, "day.tsv")
		if days > 1 {
			p = filepath.Join(dir, "day"+string(rune('1'+i))+".tsv")
		}
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteTrace(f, day); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return dir, paths
}

func TestRunReplaysDayFiles(t *testing.T) {
	_, paths := writeWorld(t, 2)
	var out bytes.Buffer
	args := append([]string{"-window", "24h", "-workers", "2"}, paths...)
	if err := run(context.Background(), args, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "window 0 [") || !strings.Contains(text, "window 1 [") {
		t.Errorf("missing window lines:\n%s", text)
	}
	if !strings.Contains(text, "appear") {
		t.Errorf("no appear deltas over a malicious world:\n%s", text)
	}
	if !strings.Contains(text, "lineages over 2 day(s)") {
		t.Errorf("missing tracker summary:\n%s", text)
	}
}

func TestRunStdinJSON(t *testing.T) {
	_, paths := writeWorld(t, 1)
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-json", "-window", "24h"}, bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 { // one window + trailing stats record
		t.Fatalf("JSON lines = %d, want 2:\n%s", len(lines), out.String())
	}
	var rec struct {
		Window    int `json:"window"`
		Requests  int `json:"requests"`
		Campaigns int `json:"campaigns"`
		Deltas    []struct {
			Kind    string `json:"kind"`
			Lineage int    `json:"lineage"`
		} `json:"deltas"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad window JSON: %v\n%s", err, lines[0])
	}
	if rec.Requests == 0 || rec.Campaigns == 0 || len(rec.Deltas) == 0 {
		t.Errorf("degenerate window record: %+v", rec)
	}
	var stats struct {
		Events   int `json:"events"`
		Windows  int `json:"windows"`
		Lineages int `json:"lineages"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &stats); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, lines[1])
	}
	if stats.Events == 0 || stats.Windows != 1 || stats.Lineages == 0 {
		t.Errorf("degenerate stats record: %+v", stats)
	}
}

func TestRunSlidingWindows(t *testing.T) {
	// Two events 12 hours apart: with a 24h window sliding by 12h the
	// second event overlaps two windows.
	tr := &trace.Trace{Name: "sliding"}
	base := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	for i, h := range []int{1, 13} {
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   base.Add(time.Duration(h) * time.Hour),
			Client: "c1", Host: "a.com", ServerIP: "9.9.9.9",
			Path: "/x" + string(rune('0'+i)), Status: 200,
		})
	}
	p := filepath.Join(t.TempDir(), "sliding.tsv")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-window", "24h", "-stride", "12h", p}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window 1 [") {
		t.Errorf("expected a second sliding window:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "into 2 windows") {
		t.Errorf("expected 2 windows total:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, nil, &out); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run(context.Background(), []string{"-window", "0s"}, strings.NewReader(""), &out); err == nil {
		t.Error("zero window accepted")
	}
	if err := run(context.Background(), []string{"/nonexistent/trace.tsv"}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}
