// Command smashd is the streaming SMASH daemon: it ingests HTTP request
// events from TSV trace files (or stdin), rotates tumbling/sliding time
// windows, runs the detection pipeline on each sealed window, and reports
// campaign lineage deltas — appear, persist, rotate — as they happen.
//
// Usage:
//
//	smashd [-window 24h] [-stride 0] [-watermark 0] [-workers 1]
//	       [-shards 4] [-speedup 0] [-seed 1] [-idf 200]
//	       [-threshold 0.8] [-single-threshold 1.0] [-json] [-v]
//	       [-state-dir DIR] [-listen ADDR] [-retire-after N]
//	       [-snapshot-every 64] [-wal-sync=true]
//	       [-cpuprofile FILE] [-memprofile FILE]
//	       [trace.tsv ...]
//
// With no file arguments (or "-"), events are read from stdin, so a live
// feed can be piped straight in. Files are replayed in argument order as
// one continuous stream. -stride 0 means tumbling windows (stride =
// window); a smaller stride yields overlapping sliding windows. -speedup N
// paces replay at N× recorded time (0 replays as fast as possible).
// -watermark bounds how out-of-order events may arrive before being
// dropped.
//
// -state-dir makes campaign lineages durable: every window is appended to
// a write-ahead log and snapshotted periodically (internal/store), and a
// restarted smashd pointed at the same directory resumes its lineages
// exactly where the previous process — even one killed with SIGKILL —
// left off. -retire-after N retires lineages idle for more than N windows
// (excluded from matching, member history pruned, scalar summary kept for
// reporting), bounding tracker memory on endless streams.
//
// -listen ADDR exposes the HTTP query/ops API (internal/serve) while the
// daemon runs: /v1/lineages, /v1/lineages/{id}, /v1/windows/latest,
// /v1/stats, /healthz and Prometheus /metrics. The server shuts down
// gracefully after the stream drains.
//
// Text mode prints one line per window plus its deltas; -json emits one
// JSON object per window (NDJSON) for downstream tooling. The first
// SIGINT/SIGTERM drains cleanly: in-flight windows are sealed, detected,
// reported and persisted before exit. A second signal cancels the run
// context, aborting in-flight detections at their next pipeline stage
// boundary. -v additionally logs per-stage detection timings to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smash/internal/core"
	"smash/internal/profiling"
	"smash/internal/serve"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/trace"
	"smash/internal/tracker"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smashd:", err)
		os.Exit(1)
	}
}

// onListen, when set (tests), receives the HTTP listener's bound address —
// the way a test using -listen 127.0.0.1:0 learns the chosen port.
var onListen func(net.Addr)

// windowRecord is the NDJSON shape of one window. Aborted marks a
// non-empty window whose detection did not complete (context cancelled or
// detection error), so downstream tooling can tell it apart from a
// genuinely analyzed zero-campaign window.
type windowRecord struct {
	Window    int            `json:"window"`
	Start     time.Time      `json:"start"`
	End       time.Time      `json:"end"`
	Requests  int            `json:"requests"`
	Campaigns int            `json:"campaigns"`
	Aborted   bool           `json:"aborted,omitempty"`
	Deltas    []stream.Delta `json:"deltas,omitempty"`
}

func run(ctx context.Context, args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("smashd", flag.ContinueOnError)
	var (
		window       = fs.Duration("window", 24*time.Hour, "detection window size")
		stride       = fs.Duration("stride", 0, "window stride; 0 means tumbling (stride = window)")
		watermark    = fs.Duration("watermark", 0, "allowed event lateness before drop")
		workers      = fs.Int("workers", 1, "detection worker pool size")
		shards       = fs.Int("shards", 4, "concurrent index builder shards")
		speedup      = fs.Float64("speedup", 0, "replay pacing: N× recorded time; 0 = as fast as possible")
		seed         = fs.Int64("seed", 1, "community detection seed")
		idf          = fs.Int("idf", 200, "IDF popularity filter threshold")
		threshold    = fs.Float64("threshold", 0.8, "inference threshold for multi-client campaigns")
		singleThresh = fs.Float64("single-threshold", 1.0, "inference threshold for single-client campaigns")
		jsonOut      = fs.Bool("json", false, "emit one JSON object per window (NDJSON)")
		verbose      = fs.Bool("v", false, "print every delta's new servers")
		stateDir     = fs.String("state-dir", "", "durable campaign-state directory (snapshot + WAL); empty disables persistence")
		listen       = fs.String("listen", "", "HTTP query/ops API address (e.g. :8080); empty disables serving")
		retireAfter  = fs.Int("retire-after", 0, "retire lineages idle for more than N windows (0 = never)")
		snapEvery    = fs.Int("snapshot-every", 64, "windows between state snapshots / WAL compactions")
		walSync      = fs.Bool("wal-sync", true, "fsync the WAL after every window (survives machine death, not just process death)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	var sources []stream.Source
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	paths := fs.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	for _, p := range paths {
		if p == "-" {
			sources = append(sources, trace.NewReader(stdin))
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		sources = append(sources, trace.NewReader(f))
	}
	var src stream.Source = &stream.MultiSource{Sources: sources}
	if *speedup > 0 {
		src = &stream.PacedSource{Src: src, Speedup: *speedup}
	}

	detOpts := []core.Option{
		core.WithSeed(*seed),
		core.WithIDFThreshold(*idf),
		core.WithThreshold(*threshold),
		core.WithSingleClientThreshold(*singleThresh),
	}
	if *verbose {
		detOpts = append(detOpts, core.WithObserver(&core.LogObserver{W: os.Stderr, Prefix: "smashd: "}))
	}
	var timing *core.TimingObserver
	if *listen != "" {
		timing = core.NewTimingObserver()
		detOpts = append(detOpts, core.WithObserver(timing))
	}

	// The store is the durability layer and the HTTP read model: with
	// -state-dir it restores lineage state from snapshot + WAL and keeps
	// persisting; with only -listen it mirrors state in memory for serving.
	engCfg := stream.Config{
		Name:      "smashd",
		Window:    *window,
		Stride:    *stride,
		Watermark: *watermark,
		Workers:   *workers,
		Shards:    *shards,
		Detector:  detOpts,
	}
	var st *store.Store
	if *stateDir != "" || *listen != "" {
		var err error
		st, err = store.Open(store.Config{
			Dir:           *stateDir,
			SnapshotEvery: *snapEvery,
			Sync:          *walSync,
			NewTracker: func() *tracker.Tracker {
				tk := tracker.New()
				tk.RetireAfter = *retireAfter
				return tk
			},
		})
		if err != nil {
			return err
		}
		defer st.Close()
		if restored := st.Applied(); restored > 0 {
			fmt.Fprintf(os.Stderr, "smashd: restored %d windows (%d WAL records) from %s\n",
				restored, st.Stats().Replayed, *stateDir)
		}
		engCfg.Tracker = st.Restore()
		engCfg.Sinks = []stream.Sink{st}
	} else if *retireAfter > 0 {
		engCfg.Tracker = tracker.New()
		engCfg.Tracker.RetireAfter = *retireAfter
	}
	eng, err := stream.New(engCfg)
	if err != nil {
		return err
	}

	// Two-phase shutdown: the first SIGINT/SIGTERM drains — Stop seals and
	// emits every in-flight window, so interrupting a live feed still
	// reports what was ingested. A second signal cancels the run context,
	// aborting in-flight detections at their next stage boundary. The
	// deferred cancel also unparks the goroutine on a signal-free return.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The ops API serves live state for the whole run and shuts down
	// gracefully once the stream has drained. Its shutdown context is the
	// run context: a second signal (hard abort) also cuts serving short.
	var httpSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: serve.NewHandler(serve.Config{
			Store:       st,
			Timing:      timing,
			EngineStats: eng.Stats,
			Started:     time.Now(),
		})}
		fmt.Fprintf(os.Stderr, "smashd: http api listening on %s\n", ln.Addr())
		if onListen != nil {
			onListen(ln.Addr())
		}
		httpErr := make(chan error, 1)
		go func() { httpErr <- httpSrv.Serve(ln) }()
		defer func() {
			sctx, scancel := context.WithTimeout(ctx, 3*time.Second)
			defer scancel()
			httpSrv.Shutdown(sctx)
			if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "smashd: http:", err)
			}
		}()
	}
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
		case <-ctx.Done():
			return
		}
		fmt.Fprintln(os.Stderr, "smashd: interrupted; draining open windows (signal again to abort)")
		eng.Stop()
		select {
		case <-sigCh:
			fmt.Fprintln(os.Stderr, "smashd: aborting in-flight detections")
			cancel()
		case <-ctx.Done():
		}
	}()

	enc := json.NewEncoder(out)
	for w := range eng.StartContext(ctx, src) {
		if *jsonOut {
			rec := windowRecord{
				Window: w.Seq, Start: w.Start, End: w.End,
				Requests: w.Requests, Deltas: w.Deltas,
			}
			if w.Report != nil {
				rec.Campaigns = len(w.Report.Campaigns) + len(w.Report.SingleClientCampaigns)
			} else if w.Requests > 0 {
				rec.Aborted = true
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintln(out, w.Render())
		for i := range w.Deltas {
			d := &w.Deltas[i]
			fmt.Fprintln(out, "  "+d.Render())
			if *verbose {
				for _, s := range d.NewServers {
					fmt.Fprintf(out, "    + %s\n", s)
				}
			}
		}
	}
	if err := eng.Err(); err != nil {
		return err
	}
	// Final snapshot + WAL compaction, so the next start restores without
	// replay. The deferred Close is then a no-op.
	if st != nil {
		if err := st.Close(); err != nil {
			return err
		}
	}

	stats := eng.Stats()
	if *jsonOut {
		return enc.Encode(map[string]any{
			"events": stats.Events, "late": stats.Late,
			"windows": stats.Windows, "emptyWindows": stats.EmptyWindows,
			"lineages": len(eng.Tracker().Lineages()),
		})
	}
	fmt.Fprintf(out, "ingested %d events (%d late-dropped) into %d windows (%d empty)\n",
		stats.Events, stats.Late, stats.Windows, stats.EmptyWindows)
	fmt.Fprint(out, eng.Tracker().Summary())
	return nil
}
