// Command smashd is the streaming SMASH daemon: it ingests HTTP request
// events from TSV trace files (or stdin), rotates tumbling/sliding time
// windows, runs the detection pipeline on each sealed window, and reports
// campaign lineage deltas — appear, persist, rotate — as they happen.
//
// Usage:
//
//	smashd [-role standalone|ingest|merge|aggregate]
//	       [-window 24h] [-stride 0] [-watermark 0] [-workers 1]
//	       [-shards 4] [-speedup 0] [-seed 1] [-idf 200]
//	       [-threshold 0.8] [-single-threshold 1.0] [-json] [-v]
//	       [-format tsv|common|combined|jsonl] [-follow] [-push]
//	       [-source-host HOST] [-jsonl-map field=key,...]
//	       [-state-dir DIR] [-listen ADDR] [-retire-after N]
//	       [-snapshot-every 64] [-wal-sync=true]
//	       [-retain-windows N] [-retain-age DUR]
//	       [-log-format text|json] [-log-level info] [-trace-log FILE]
//	       [-trace-log-max-bytes N] [-trace-log-keep N] [-version]
//	       [-pprof] [-cpuprofile FILE] [-memprofile FILE]
//	       [-forward URL] [-node NAME] [-shard-of N/M]
//	       [-cluster-listen ADDR] [-expect M] [-straggler N]
//	       [trace.tsv ...]
//
// With no file arguments (or "-"), events are read from stdin, so a live
// feed can be piped straight in. Files are replayed in argument order as
// one continuous stream. -stride 0 means tumbling windows (stride =
// window); a smaller stride yields overlapping sliding windows. -speedup N
// paces replay at N× recorded time (0 replays as fast as possible).
// -watermark bounds how out-of-order events may arrive before being
// dropped.
//
// # Sources
//
// -format picks the input line grammar (internal/source): the native
// tsv trace format, Apache/Nginx common or combined access logs
// (-source-host names the server for lines without a vhost token), or
// jsonl — one JSON object per line, with -jsonl-map renaming fields
// (e.g. -jsonl-map time=timestamp,client=ip). Malformed lines are
// counted (smash_source_parse_errors_total) and skipped, never fatal.
//
// -follow tails a single live log file the way tail -F does: growth is
// picked up as it is written, rotation (rename/recreate) and truncation
// are followed, and with -state-dir the read offset is checkpointed
// after every persisted window, so a restarted — even kill -9'd —
// daemon resumes without losing or duplicating events.
//
// -push (with -listen) accepts batched raw events POSTed to /v1/ingest
// (Content-Type picks the format: application/x-ndjson,
// text/tab-separated-values, text/x-common-log, text/x-combined-log);
// ?eos=1 on a final POST ends the stream. Pushes block while the engine
// is behind — backpressure reaches the client as a stalled POST. With
// file arguments the files replay first, then the push queue drains.
//
// -state-dir makes campaign lineages durable: every window is appended to
// a write-ahead log and snapshotted periodically (internal/store), and a
// restarted smashd pointed at the same directory resumes its lineages
// exactly where the previous process — even one killed with SIGKILL —
// left off. -retire-after N retires lineages idle for more than N windows
// (excluded from matching, member history pruned, scalar summary kept for
// reporting), bounding tracker memory on endless streams. Retired
// lineages emit a "retire" delta in the window they idle out.
//
// The store also keeps a per-window history log (DIR/history/) backing
// the analytics endpoints: time-range window queries, lineage timelines
// and SSE delta replay all survive restarts. -retain-windows N caps it
// at the newest N windows; -retain-age D drops windows more than D of
// event time behind the newest — so months-long runs stay bounded on
// disk. Both default to 0 (keep everything).
//
// -listen ADDR exposes the HTTP query/ops API (internal/serve) while the
// daemon runs: /v1/lineages (paginated via ?limit&offset, filtered via
// ?server&kind&minServers&minClients&activeFrom&activeTo),
// /v1/lineages/{id}, /v1/lineages/{id}/timeline, /v1/windows (ranged via
// ?from&to — window seqs or RFC 3339 times), /v1/windows/latest,
// /v1/windows/{seq}/trace, /v1/deltas (Server-Sent Events with
// Last-Event-ID resume), /v1/stats, /healthz and Prometheus /metrics
// (latency histograms, watermark lag, Go runtime stats). -pprof additionally mounts
// net/http/pprof under /debug/pprof/ on the same mux. The server shuts
// down gracefully after the stream drains.
//
// # Observability
//
// Every role keeps an obs.Registry of latency histograms (ingest->seal,
// seal->commit, detection and its stages, sink consumes, forward POSTs,
// aggregator fragment waits), a watermark-lag gauge and an obs.Tracer
// ring of recent window lifecycle traces; -listen / -cluster-listen
// expose them at /metrics and /v1/windows/{seq}/trace. -trace-log FILE
// additionally appends every span as one NDJSON line; the file rotates
// past -trace-log-max-bytes (default 64 MiB, 0 disables), keeping
// -trace-log-keep rotated segments (FILE.1 oldest-last), with the active
// segment's size exported as smash_trace_log_bytes. -version prints the
// build version (set via -ldflags "-X main.version=...") and the Go
// toolchain, also exported as the constant smash_build_info gauge with
// version, goversion and role labels.
//
// In cluster roles every fragment carries an append-only hop trail —
// which node sent it, in which role, when it was sent and accepted, after
// how many attempts and how long in the spool — so the aggregator's
// window traces include one span per hop and GET /v1/cluster on any node
// returns its subtree: each known child's role, watermark, lag, estimated
// clock skew (smash_cluster_node_clock_skew_seconds) and last spool
// dwell, recursively through merge tiers. Diagnostics log
// through log/slog: -log-format picks text or json, -log-level one of
// debug, info, warn, error.
//
// # Cluster roles
//
// A single process caps ingestion at one machine; -role splits the
// pipeline across processes (internal/cluster):
//
//   - -role ingest windows its share of the traffic without running
//     detection and forwards each sealed window fragment (wire-encoded,
//     with its symbol dictionary) to -forward URL, retrying transient
//     failures with full-jitter backoff. -shard-of N/M keeps only clients
//     hashing to partition N of M, so every node can read the same full
//     feed; pre-partitioned inputs (tracegen -partitions) skip the
//     filter. -node names the node; it defaults to "shardN" under
//     -shard-of. With -state-dir the forwarder gains a durable on-disk
//     spool: fragments that exhaust their retries during an aggregator
//     outage spill to DIR/spool and drain in order — oldest first — when
//     the aggregator answers again, surviving node restarts too.
//   - -role merge is an intermediate fan-in tier: it listens on
//     -cluster-listen for fragments from -expect children (ingest nodes
//     or other merge tiers), combines each window's fragments into one —
//     no detection, no tracking — and forwards the merged fragment to
//     -forward URL under its own -node name, with the same watermark,
//     straggler and end-of-stream semantics per tier. Merging is
//     associative, so any tree shape produces byte-identical output.
//   - -role aggregate listens on -cluster-listen for fragments from
//     -expect ingest nodes, aligns them on epoch-derived window ids,
//     merges each window and runs detection, tracking and persistence
//     exactly like a standalone run — byte-identical output for the same
//     traffic. -straggler N force-seals windows once the lead node runs N
//     windows ahead; late fragments are counted and dropped. The HTTP API
//     (including POST /v1/ingest and cluster metrics) serves on
//     -cluster-listen; the process exits once every expected node has
//     sent its end-of-stream marker.
//
// Window boundaries in cluster roles are anchored at the Unix epoch, not
// at the first event, so all nodes agree on window ids without
// coordination.
//
// With -state-dir, aggregate and merge roles are crash-recoverable: every
// accepted fragment is appended to a fragment log (DIR/fragments) before
// it is acknowledged, and a restarted process — even one killed with
// SIGKILL mid-stream — replays the log, reconciles the one window a
// crash can interrupt against the store, and resumes with continuous
// window numbering and byte-identical output. /v1/stats shows the
// membership view: per-node fragment counts, watermark, last-seen time,
// and whether a node is overdue for its final marker.
//
// Text mode prints one line per window plus its deltas; -json emits one
// JSON object per window (NDJSON) for downstream tooling. The first
// SIGINT/SIGTERM drains cleanly: in-flight windows are sealed, detected,
// reported and persisted before exit. A second signal cancels the run
// context, aborting in-flight detections at their next pipeline stage
// boundary. -v additionally logs per-stage detection timings to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"smash/internal/core"
	"smash/internal/obs"
	"smash/internal/profiling"
	"smash/internal/serve"
	"smash/internal/source"
	"smash/internal/store"
	"smash/internal/stream"
	"smash/internal/tracker"
)

// version identifies this build in `smashd -version` and the
// smash_build_info metric. "dev" for plain `go build`; release builds
// override it with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smashd:", err)
		os.Exit(1)
	}
}

// onListen, when set (tests), receives the HTTP listener's bound address —
// the way a test using -listen 127.0.0.1:0 learns the chosen port.
var onListen func(net.Addr)

// onSource, when set (tests), observes the options after openSource has
// assembled the input — the way a test reaches the live tailer and
// source counters of an in-process -follow run.
var onSource func(*options)

// options carries every parsed flag plus the positional trace paths.
type options struct {
	window       time.Duration
	stride       time.Duration
	watermark    time.Duration
	workers      int
	shards       int
	speedup      float64
	seed         int64
	idf          int
	threshold    float64
	singleThresh float64
	jsonOut      bool
	verbose      bool
	format       string
	follow       bool
	push         bool
	sourceHost   string
	jsonlMap     string
	stateDir     string
	listen       string
	retireAfter  int
	snapEvery    int
	walSync      bool
	retainWin    int
	retainAge    time.Duration
	logFormat    string
	logLevel     string
	traceLog     string
	traceLogMax  int64
	traceLogKeep int
	pprofOn      bool

	role          string
	forward       string
	node          string
	shardOf       string
	clusterListen string
	expect        int
	straggler     int

	paths []string

	// Shared observability plane, built once per process in run().
	logger *slog.Logger
	reg    *obs.Registry
	tracer *obs.Tracer

	// Live source state, populated by openSource: per-source counters
	// (rendered as smash_source_* metrics), the tailer behind -follow and
	// the queue behind -push.
	srcCtrs   []*source.Counters
	tailer    *source.Tailer
	pushQueue *source.PushQueue
}

// windowRecord is the NDJSON shape of one window. Aborted marks a
// non-empty window whose detection did not complete (context cancelled or
// detection error), so downstream tooling can tell it apart from a
// genuinely analyzed zero-campaign window.
type windowRecord struct {
	Window    int            `json:"window"`
	Start     time.Time      `json:"start"`
	End       time.Time      `json:"end"`
	Requests  int            `json:"requests"`
	Campaigns int            `json:"campaigns"`
	Aborted   bool           `json:"aborted,omitempty"`
	Deltas    []stream.Delta `json:"deltas,omitempty"`
}

func run(ctx context.Context, args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("smashd", flag.ContinueOnError)
	var (
		o           options
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile (taken at exit) to this file")
		showVersion = fs.Bool("version", false, "print the build version and exit")
	)
	fs.DurationVar(&o.window, "window", 24*time.Hour, "detection window size")
	fs.DurationVar(&o.stride, "stride", 0, "window stride; 0 means tumbling (stride = window)")
	fs.DurationVar(&o.watermark, "watermark", 0, "allowed event lateness before drop")
	fs.IntVar(&o.workers, "workers", 1, "detection worker pool size")
	fs.IntVar(&o.shards, "shards", 4, "concurrent index builder shards")
	fs.Float64Var(&o.speedup, "speedup", 0, "replay pacing: N× recorded time; 0 = as fast as possible")
	fs.Int64Var(&o.seed, "seed", 1, "community detection seed")
	fs.IntVar(&o.idf, "idf", 200, "IDF popularity filter threshold")
	fs.Float64Var(&o.threshold, "threshold", 0.8, "inference threshold for multi-client campaigns")
	fs.Float64Var(&o.singleThresh, "single-threshold", 1.0, "inference threshold for single-client campaigns")
	fs.BoolVar(&o.jsonOut, "json", false, "emit one JSON object per window (NDJSON)")
	fs.BoolVar(&o.verbose, "v", false, "print every delta's new servers")
	fs.StringVar(&o.format, "format", "tsv", "input line format: tsv, common, combined or jsonl")
	fs.BoolVar(&o.follow, "follow", false, "tail the single input file across rotation (tail -F); with -state-dir, resume from a byte-offset checkpoint")
	fs.BoolVar(&o.push, "push", false, "accept raw events POSTed to /v1/ingest on the API listener")
	fs.StringVar(&o.sourceHost, "source-host", "", "server hostname assumed for access-log lines without a vhost token")
	fs.StringVar(&o.jsonlMap, "jsonl-map", "", "jsonl field mapping overrides, comma-separated field=key pairs (e.g. time=timestamp,client=ip)")
	fs.StringVar(&o.stateDir, "state-dir", "", "durable campaign-state directory (snapshot + WAL); empty disables persistence")
	fs.StringVar(&o.listen, "listen", "", "HTTP query/ops API address (e.g. :8080); empty disables serving")
	fs.IntVar(&o.retireAfter, "retire-after", 0, "retire lineages idle for more than N windows (0 = never)")
	fs.IntVar(&o.snapEvery, "snapshot-every", 64, "windows between state snapshots / WAL compactions")
	fs.BoolVar(&o.walSync, "wal-sync", true, "fsync the WAL after every window (survives machine death, not just process death)")
	fs.IntVar(&o.retainWin, "retain-windows", 0, "cap the queryable window history log at N windows (0 = keep all)")
	fs.DurationVar(&o.retainAge, "retain-age", 0, "drop history windows more than this behind the newest window, in event time (0 = keep all)")
	fs.StringVar(&o.role, "role", "standalone", "process role: standalone, ingest (window + forward fragments), merge (fan in child fragments) or aggregate (merge fragments + detect)")
	fs.StringVar(&o.forward, "forward", "", "ingest/merge roles: parent aggregator base URL (e.g. http://agg:8080)")
	fs.StringVar(&o.node, "node", "", "ingest/merge roles: node name in forwarded fragments (default shardN under -shard-of)")
	fs.StringVar(&o.shardOf, "shard-of", "", "ingest role: keep only clients hashing to partition N of M, as N/M (e.g. 0/2)")
	fs.StringVar(&o.clusterListen, "cluster-listen", "", "aggregate/merge roles: address serving /v1/ingest and the ops API")
	fs.IntVar(&o.expect, "expect", 0, "aggregate/merge roles: number of child nodes feeding this tier")
	fs.IntVar(&o.straggler, "straggler", 0, "aggregate/merge roles: force-seal windows N behind the lead node (0 = wait for all nodes)")
	fs.StringVar(&o.logFormat, "log-format", "text", "diagnostic log format: text or json")
	fs.StringVar(&o.logLevel, "log-level", "info", "diagnostic log level: debug, info, warn or error")
	fs.StringVar(&o.traceLog, "trace-log", "", "append window-lifecycle spans to this file as NDJSON")
	fs.Int64Var(&o.traceLogMax, "trace-log-max-bytes", 64<<20, "rotate the -trace-log file past this size (0 = never rotate)")
	fs.IntVar(&o.traceLogKeep, "trace-log-keep", 3, "rotated -trace-log segments to keep (FILE.1 .. FILE.N; older are dropped)")
	fs.BoolVar(&o.pprofOn, "pprof", false, "expose net/http/pprof under /debug/pprof/ on the API listener")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintf(out, "smashd %s %s\n", version, runtime.Version())
		return nil
	}
	o.paths = fs.Args()
	logger, err := obs.NewLogger(os.Stderr, o.logFormat, o.logLevel)
	if err != nil {
		return err
	}
	o.logger = logger
	o.reg = obs.NewRegistry()
	o.reg.GaugeFunc("smash_build_info",
		"Build identity: constant 1 carrying the version, Go toolchain and process role as labels.",
		func(emit obs.Emit) { emit(1, "version", version, "goversion", runtime.Version(), "role", o.role) })
	o.tracer = obs.NewTracer(0)
	if o.traceLog != "" {
		w, err := obs.NewRotatingWriter(o.traceLog, o.traceLogMax, o.traceLogKeep)
		if err != nil {
			return err
		}
		defer w.Close()
		o.tracer.LogTo(w)
		o.reg.GaugeFunc("smash_trace_log_bytes",
			"Active -trace-log segment size in bytes (drops back to zero at each rotation).",
			func(emit obs.Emit) { emit(float64(w.Size())) })
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	switch o.role {
	case "standalone":
		return runStandalone(ctx, &o, stdin, out)
	case "ingest":
		return runIngest(ctx, &o, stdin, out)
	case "aggregate":
		return runAggregate(ctx, &o, out)
	case "merge":
		return runMerge(ctx, &o, out)
	default:
		return fmt.Errorf("unknown -role %q (want standalone, ingest, merge or aggregate)", o.role)
	}
}

// parseJSONLMap parses -jsonl-map's "field=key,field=key" syntax.
func parseJSONLMap(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		field, key, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || field == "" || key == "" {
			return nil, fmt.Errorf("-jsonl-map entries must be field=key, got %q", pair)
		}
		m[field] = key
	}
	return m, nil
}

// sourceOptions builds the format options shared by the file source and
// the push intake.
func (o *options) sourceOptions() (source.Options, error) {
	jm, err := parseJSONLMap(o.jsonlMap)
	if err != nil {
		return source.Options{}, err
	}
	return source.Options{Host: o.sourceHost, JSONLMap: jm}, nil
}

// sourceStats snapshots every live source's counters — the Sources hook
// for internal/serve.
func (o *options) sourceStats() []source.Stats {
	out := make([]source.Stats, 0, len(o.srcCtrs))
	for _, c := range o.srcCtrs {
		out = append(out, c.Stats())
	}
	return out
}

// drain composes the graceful-shutdown action: close the live sources
// first (the tailer finishes the file, the push queue drains and EOFs)
// so the engine sees a natural end-of-stream, then Stop seals whatever
// is still open.
func (o *options) drain(engStop func()) func() {
	return func() {
		if o.tailer != nil {
			o.tailer.Stop()
		}
		if o.pushQueue != nil {
			o.pushQueue.Close()
		}
		engStop()
	}
}

// openSource assembles the input source: replayed files or stdin in the
// configured -format, a rotation-following tailer under -follow, and
// the HTTP push queue under -push (replayed after any files), returning
// the closers to run at exit.
func openSource(o *options, stdin io.Reader) (stream.Source, []io.Closer, error) {
	opts, err := o.sourceOptions()
	if err != nil {
		return nil, nil, err
	}
	f, err := source.New(o.format, opts)
	if err != nil {
		return nil, nil, err
	}

	var sources []stream.Source
	var closers []io.Closer
	switch {
	case o.follow:
		if len(o.paths) != 1 || o.paths[0] == "-" {
			return nil, nil, fmt.Errorf("-follow needs exactly one file argument (a path, not stdin)")
		}
		ck := ""
		if o.stateDir != "" {
			ck = filepath.Join(o.stateDir, "source.ckpt")
		}
		ctrs := source.NewCounters(o.paths[0], o.format)
		t, err := source.NewTailer(source.TailerConfig{
			Path:       o.paths[0],
			Format:     f,
			Counters:   ctrs,
			Checkpoint: ck,
		})
		if err != nil {
			return nil, nil, err
		}
		o.tailer = t
		o.srcCtrs = append(o.srcCtrs, ctrs)
		sources = append(sources, t)
	default:
		paths := o.paths
		if len(paths) == 0 && !o.push {
			paths = []string{"-"}
		}
		for _, p := range paths {
			var rd io.Reader
			name := p
			if p == "-" {
				rd, name = stdin, "stdin"
			} else {
				file, err := os.Open(p)
				if err != nil {
					for _, c := range closers {
						c.Close()
					}
					return nil, nil, err
				}
				closers = append(closers, file)
				rd = file
			}
			ctrs := source.NewCounters(name, o.format)
			o.srcCtrs = append(o.srcCtrs, ctrs)
			sources = append(sources, source.NewDecoder(rd, f, ctrs))
		}
	}
	if o.push {
		o.pushQueue = source.NewPushQueue(0)
		sources = append(sources, o.pushQueue)
	}

	var src stream.Source
	if len(sources) == 1 {
		src = sources[0]
	} else {
		src = &stream.MultiSource{Sources: sources}
	}
	if o.speedup > 0 {
		src = &stream.PacedSource{Src: src, Speedup: o.speedup}
	}
	return src, closers, nil
}

// detectorOptions builds the core options shared by the standalone engine
// and the aggregator.
func (o *options) detectorOptions() []core.Option {
	opts := []core.Option{
		core.WithSeed(o.seed),
		core.WithIDFThreshold(o.idf),
		core.WithThreshold(o.threshold),
		core.WithSingleClientThreshold(o.singleThresh),
	}
	if o.verbose {
		opts = append(opts, core.WithObserver(&core.LogObserver{W: os.Stderr, Prefix: "smashd: "}))
	}
	return opts
}

// printWindows consumes the window stream, rendering each result as text
// or NDJSON — shared by the standalone and aggregate roles.
func printWindows(out io.Writer, results <-chan stream.WindowResult, jsonOut, verbose bool) error {
	enc := json.NewEncoder(out)
	for w := range results {
		if jsonOut {
			rec := windowRecord{
				Window: w.Seq, Start: w.Start, End: w.End,
				Requests: w.Requests, Deltas: w.Deltas,
			}
			if w.Report != nil {
				rec.Campaigns = len(w.Report.Campaigns) + len(w.Report.SingleClientCampaigns)
			} else if w.Requests > 0 {
				rec.Aborted = true
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintln(out, w.Render())
		for i := range w.Deltas {
			d := &w.Deltas[i]
			fmt.Fprintln(out, "  "+d.Render())
			if verbose {
				for _, s := range d.NewServers {
					fmt.Fprintf(out, "    + %s\n", s)
				}
			}
		}
	}
	return nil
}

// serveHTTP starts the ops API server on addr and returns its shutdown
// function, to be run after the stream drains. A cancelled run context
// cuts serving short.
func serveHTTP(ctx context.Context, addr string, handler http.Handler, log *slog.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	log.Info("http api listening", "addr", ln.Addr().String())
	if onListen != nil {
		onListen(ln.Addr())
	}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	return func() {
		sctx, scancel := context.WithTimeout(ctx, 3*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
		if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("http server failed", "err", err)
		}
	}, nil
}

// notifySignals installs the two-phase shutdown handler: the first
// SIGINT/SIGTERM calls drain (seal and emit in-flight windows), a second
// cancels the run context, aborting in-flight work. The returned stop
// function removes the handler.
func notifySignals(ctx context.Context, cancel context.CancelFunc, drain func(), log *slog.Logger) func() {
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sigCh:
		case <-ctx.Done():
			return
		}
		log.Info("interrupted; draining open windows (signal again to abort)")
		drain()
		select {
		case <-sigCh:
			log.Warn("aborting in-flight detections")
			cancel()
		case <-ctx.Done():
		}
	}()
	return func() { signal.Stop(sigCh) }
}

// openStore opens the durability layer when -state-dir or serving demands
// one; nil when neither does.
func openStore(o *options) (*store.Store, error) {
	if o.stateDir == "" && o.listen == "" && o.clusterListen == "" {
		return nil, nil
	}
	return store.Open(store.Config{
		Dir:           o.stateDir,
		SnapshotEvery: o.snapEvery,
		Sync:          o.walSync,
		RetainWindows: o.retainWin,
		RetainAge:     o.retainAge,
		NewTracker: func() *tracker.Tracker {
			tk := tracker.New()
			tk.RetireAfter = o.retireAfter
			return tk
		},
	})
}

func runStandalone(ctx context.Context, o *options, stdin io.Reader, out io.Writer) error {
	if o.push && o.listen == "" {
		return fmt.Errorf("-push needs -listen (events arrive on POST /v1/ingest)")
	}
	// The store opens before the source: a -follow tailer checkpoints
	// into the same -state-dir, and resuming needs the store's last
	// applied window as the dedup horizon.
	st, err := openStore(o)
	if err != nil {
		return err
	}
	src, closers, err := openSource(o, stdin)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()

	// Resume filter: re-read events the previous process already applied
	// durably (tail re-reads past the conservative checkpoint offset,
	// re-pushed batches) fall below the last applied window's end and are
	// skipped, so a restart neither duplicates nor loses events.
	if st != nil && (o.follow || o.push) {
		if last := st.LastWindow(); last != nil {
			var ctrs *source.Counters
			if len(o.srcCtrs) > 0 {
				ctrs = o.srcCtrs[0]
			}
			src = &source.SkipBelow{Src: src, Horizon: last.End, Counters: ctrs}
			o.logger.Info("resuming ingestion", "horizon", last.End)
		}
	}
	if o.tailer != nil {
		if path, off, ok := o.tailer.Resume(); ok {
			o.logger.Info("resuming tail from checkpoint", "file", path, "offset", off)
		}
	}
	if onSource != nil {
		onSource(o)
	}

	detOpts := o.detectorOptions()
	var timing *core.TimingObserver
	if o.listen != "" {
		timing = core.NewTimingObserver()
		detOpts = append(detOpts, core.WithObserver(timing))
	}

	// The store is the durability layer and the HTTP read model: with
	// -state-dir it restores lineage state from snapshot + WAL and keeps
	// persisting; with only -listen it mirrors state in memory for serving.
	engCfg := stream.Config{
		Name:      "smashd",
		Window:    o.window,
		Stride:    o.stride,
		Watermark: o.watermark,
		Workers:   o.workers,
		Shards:    o.shards,
		Detector:  detOpts,
		Metrics:   o.reg,
		Tracer:    o.tracer,
		Logger:    o.logger.With("component", "engine"),
	}
	if st != nil {
		defer st.Close()
		if restored := st.Applied(); restored > 0 {
			o.logger.Info("restored durable state",
				"windows", restored, "walRecords", st.Stats().Replayed, "dir", o.stateDir)
		}
		engCfg.Tracker = st.Restore()
		engCfg.Sinks = []stream.Sink{st}
	} else if o.retireAfter > 0 {
		engCfg.Tracker = tracker.New()
		engCfg.Tracker.RetireAfter = o.retireAfter
	}
	// The checkpoint sink runs after the store sink: by the time it
	// commits a tail offset, the window behind it is already on disk.
	if o.tailer != nil {
		engCfg.Sinks = append(engCfg.Sinks, &source.CheckpointSink{T: o.tailer})
	}
	eng, err := stream.New(engCfg)
	if err != nil {
		return err
	}

	// Two-phase shutdown: the first SIGINT/SIGTERM drains — Stop seals and
	// emits every in-flight window, so interrupting a live feed still
	// reports what was ingested. A second signal cancels the run context,
	// aborting in-flight detections at their next stage boundary. The
	// deferred cancel also unparks the goroutine on a signal-free return.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The ops API serves live state for the whole run and shuts down
	// gracefully once the stream has drained. Its shutdown context is the
	// run context: a second signal (hard abort) also cuts serving short.
	if o.listen != "" {
		pushOpts, _ := o.sourceOptions()
		shutdown, err := serveHTTP(ctx, o.listen, serve.NewHandler(serve.Config{
			Store:       st,
			Timing:      timing,
			EngineStats: eng.Stats,
			Push:        o.pushQueue,
			PushOptions: pushOpts,
			Sources:     o.sourceStats,
			Node:        o.node,
			Role:        "standalone",
			Started:     time.Now(),
			Metrics:     o.reg,
			Tracer:      o.tracer,
			Pprof:       o.pprofOn,
		}), o.logger.With("component", "http"))
		if err != nil {
			return err
		}
		defer shutdown()
	}
	defer notifySignals(ctx, cancel, o.drain(eng.Stop), o.logger)()

	if err := printWindows(out, eng.StartContext(ctx, src), o.jsonOut, o.verbose); err != nil {
		return err
	}
	if err := eng.Err(); err != nil {
		return err
	}
	// Final snapshot + WAL compaction, so the next start restores without
	// replay. The deferred Close is then a no-op.
	if st != nil {
		if err := st.Close(); err != nil {
			return err
		}
	}

	stats := eng.Stats()
	if o.jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{
			"events": stats.Events, "late": stats.Late,
			"windows": stats.Windows, "emptyWindows": stats.EmptyWindows,
			"lineages": len(eng.Tracker().Lineages()),
		})
	}
	fmt.Fprintf(out, "ingested %d events (%d late-dropped) into %d windows (%d empty)\n",
		stats.Events, stats.Late, stats.Windows, stats.EmptyWindows)
	fmt.Fprint(out, eng.Tracker().Summary())
	return nil
}
