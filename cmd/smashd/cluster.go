package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"smash/internal/cluster"
	"smash/internal/core"
	"smash/internal/serve"
	"smash/internal/store"
	"smash/internal/stream"
)

// parseShardOf parses "-shard-of N/M" into (shard, of).
func parseShardOf(s string) (int, int, error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard-of must be N/M (e.g. 0/2), got %q", s)
	}
	shard, err1 := strconv.Atoi(lhs)
	of, err2 := strconv.Atoi(rhs)
	if err1 != nil || err2 != nil || of <= 0 || shard < 0 || shard >= of {
		return 0, 0, fmt.Errorf("-shard-of must be N/M with 0 <= N < M, got %q", s)
	}
	return shard, of, nil
}

// runIngest is the cluster ingest role: window one partition of the
// traffic with a detection-free engine and forward every sealed window
// fragment to the aggregator. Window boundaries anchor at the Unix epoch
// so all nodes agree on window ids.
func runIngest(ctx context.Context, o *options, stdin io.Reader, out io.Writer) error {
	if o.forward == "" {
		return fmt.Errorf("-role ingest requires -forward URL")
	}
	if o.push && o.listen == "" {
		return fmt.Errorf("-push needs -listen (events arrive on POST /v1/ingest)")
	}
	node := o.node
	var shardSrcWrap func(stream.Source) stream.Source
	if o.shardOf != "" {
		shard, of, err := parseShardOf(o.shardOf)
		if err != nil {
			return err
		}
		if node == "" {
			node = fmt.Sprintf("shard%d", shard)
		}
		shardSrcWrap = func(s stream.Source) stream.Source {
			return &cluster.ShardSource{Src: s, Shard: shard, Of: of}
		}
	}
	if node == "" {
		return fmt.Errorf("-role ingest requires -node (or -shard-of to derive one)")
	}

	src, closers, err := openSource(o, stdin)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if shardSrcWrap != nil {
		src = shardSrcWrap(src)
	}

	stride := o.stride
	if stride == 0 {
		stride = o.window
	}
	// On an ingest node -state-dir holds the forwarder's durable spool:
	// fragments the aggregator could not take survive restarts there and
	// drain once it answers again.
	var spoolDir string
	if o.stateDir != "" {
		spoolDir = filepath.Join(o.stateDir, "spool")
	}
	fwd, err := cluster.NewForwarder(cluster.ForwarderConfig{
		URL:      o.forward,
		Node:     node,
		Stride:   stride,
		SpoolDir: spoolDir,
		Metrics:  o.reg,
		Logger:   o.logger.With("component", "forward", "node", node),
	})
	if err != nil {
		return err
	}
	eng, err := stream.New(stream.Config{
		Name:      "smashd",
		Window:    o.window,
		Stride:    o.stride,
		Watermark: o.watermark,
		Workers:   o.workers,
		Shards:    o.shards,
		Origin:    cluster.Epoch,
		IndexOnly: true,
		Sinks:     []stream.Sink{fwd},
		Metrics:   o.reg,
		Tracer:    o.tracer,
		Logger:    o.logger.With("component", "engine", "node", node),
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// An ingest node's ops API serves live engine counters and metrics;
	// lineage state lives at the aggregator, so its store stays empty.
	if o.listen != "" {
		st, err := store.Open(store.Config{})
		if err != nil {
			return err
		}
		pushOpts, _ := o.sourceOptions()
		shutdown, err := serveHTTP(ctx, o.listen, serve.NewHandler(serve.Config{
			Store:       st,
			EngineStats: eng.Stats,
			Push:        o.pushQueue,
			PushOptions: pushOpts,
			Sources:     o.sourceStats,
			Node:        node,
			Role:        "ingest",
			ForwarderStats: func() cluster.ForwarderStats {
				return fwd.Stats()
			},
			Started: time.Now(),
			Metrics: o.reg,
			Tracer:  o.tracer,
			Pprof:   o.pprofOn,
		}), o.logger.With("component", "http"))
		if err != nil {
			return err
		}
		defer shutdown()
	}
	defer notifySignals(ctx, cancel, o.drain(eng.Stop), o.logger)()

	enc := json.NewEncoder(out)
	for w := range eng.StartContext(ctx, src) {
		if o.jsonOut {
			if err := enc.Encode(windowRecord{
				Window: w.Seq, Start: w.Start, End: w.End, Requests: w.Requests,
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(out, "forwarded window %d [%s .. %s) requests=%d\n",
			w.Seq, w.Start.Format(time.RFC3339), w.End.Format(time.RFC3339), w.Requests)
	}
	if err := eng.Err(); err != nil {
		return err
	}
	// End-of-stream marker: tells the aggregator this node is done, so
	// cluster windows can seal without waiting on the straggler policy.
	// CloseContext drains any spool first and keeps retrying through an
	// aggregator outage until a shutdown signal cancels the context.
	if err := fwd.CloseContext(ctx); err != nil {
		return err
	}

	stats, fs := eng.Stats(), fwd.Stats()
	if o.jsonOut {
		return enc.Encode(map[string]any{
			"node": node, "events": stats.Events, "late": stats.Late,
			"windows": stats.Windows, "emptyWindows": stats.EmptyWindows,
			"forwarded": fs.Forwarded, "retries": fs.Retries, "bytes": fs.Bytes,
			"spooled": fs.Spooled, "spoolDropped": fs.SpoolDropped,
		})
	}
	fmt.Fprintf(out, "node %s: ingested %d events (%d late-dropped) into %d windows (%d empty); forwarded %d fragments (%d retries, %d bytes) to %s\n",
		node, stats.Events, stats.Late, stats.Windows, stats.EmptyWindows,
		fs.Forwarded, fs.Retries, fs.Bytes, o.forward)
	if fs.Spooled > 0 || fs.SpoolPending > 0 {
		fmt.Fprintf(out, "spool: %d fragments spilled during outages (%d dropped, %d still pending)\n",
			fs.Spooled, fs.SpoolDropped, fs.SpoolPending)
	}
	return nil
}

// runAggregate is the cluster aggregator role: receive fragments from
// -expect ingest nodes on -cluster-listen, merge each cluster-wide window
// and drive detection, tracking and persistence exactly like a standalone
// run. The process exits once every expected node has sent its
// end-of-stream marker (or on the first signal, which flushes).
func runAggregate(ctx context.Context, o *options, out io.Writer) error {
	if o.clusterListen == "" {
		return fmt.Errorf("-role aggregate requires -cluster-listen ADDR")
	}
	if o.expect <= 0 {
		return fmt.Errorf("-role aggregate requires -expect N (the ingest node count)")
	}
	if o.listen != "" {
		return fmt.Errorf("the aggregator serves its ops API on -cluster-listen; drop -listen")
	}
	if len(o.paths) > 0 {
		return fmt.Errorf("the aggregator takes no trace files; ingest nodes do the reading")
	}

	detOpts := o.detectorOptions()
	timing := core.NewTimingObserver()
	detOpts = append(detOpts, core.WithObserver(timing))

	st, err := openStore(o)
	if err != nil {
		return err
	}
	defer st.Close()
	if restored := st.Applied(); restored > 0 {
		o.logger.Info("restored durable state",
			"windows", restored, "walRecords", st.Stats().Replayed, "dir", o.stateDir)
	}

	// With a state dir the aggregator is crash-recoverable: every acked
	// fragment lands in stateDir/fragments before the 202, and a restart
	// replays un-sealed windows. The store's last applied window seq
	// anchors the frontier reconcile (at most one window is redone).
	var fragDir string
	applied := 0
	if o.stateDir != "" {
		fragDir = filepath.Join(o.stateDir, "fragments")
		if last := st.LastWindow(); last != nil {
			applied = last.Window + 1
		}
	}
	agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
		Name:           "smashd",
		Window:         o.window,
		Stride:         o.stride,
		Expect:         o.expect,
		Straggler:      o.straggler,
		Detector:       detOpts,
		Tracker:        st.Restore(),
		Sinks:          []stream.Sink{st},
		FragDir:        fragDir,
		FragSync:       o.walSync,
		AppliedWindows: applied,
		Metrics:        o.reg,
		Tracer:         o.tracer,
		Logger:         o.logger.With("component", "aggregator"),
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	shutdown, err := serveHTTP(ctx, o.clusterListen, serve.NewHandler(serve.Config{
		Store:      st,
		Timing:     timing,
		Aggregator: agg,
		Node:       o.node,
		Role:       "aggregate",
		Started:    time.Now(),
		Metrics:    o.reg,
		Tracer:     o.tracer,
		Pprof:      o.pprofOn,
	}), o.logger.With("component", "http"))
	if err != nil {
		return err
	}
	defer shutdown()
	defer notifySignals(ctx, cancel, agg.Stop, o.logger)()

	if err := printWindows(out, agg.Start(ctx), o.jsonOut, o.verbose); err != nil {
		return err
	}
	if err := agg.Err(); err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}

	stats := agg.Stats()
	if o.jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{
			"nodes": stats.Nodes, "fragments": stats.Fragments,
			"lateFragments": stats.LateFragments, "duplicateFragments": stats.DuplicateFragments,
			"windows": stats.Windows, "emptyWindows": stats.EmptyWindows,
			"requests": stats.Requests, "lineages": len(agg.Tracker().Lineages()),
		})
	}
	fmt.Fprintf(out, "aggregated %d fragments from %d nodes (%d late, %d duplicate) into %d windows (%d empty)\n",
		stats.Fragments, stats.Nodes, stats.LateFragments, stats.DuplicateFragments,
		stats.Windows, stats.EmptyWindows)
	fmt.Fprint(out, agg.Tracker().Summary())
	return nil
}

// runMerge is the cluster fan-in role: receive fragments from -expect
// children on -cluster-listen, merge each window (no detection, no
// tracker) and forward one combined fragment per window to the -forward
// parent, with this tier's own final marker once every child finishes. A
// -state-dir makes the tier crash-recoverable (stateDir/fragments) and
// its upstream leg durable (stateDir/spool).
func runMerge(ctx context.Context, o *options, out io.Writer) error {
	if o.clusterListen == "" {
		return fmt.Errorf("-role merge requires -cluster-listen ADDR")
	}
	if o.expect <= 0 {
		return fmt.Errorf("-role merge requires -expect N (the child node count)")
	}
	if o.forward == "" {
		return fmt.Errorf("-role merge requires -forward URL (the parent aggregator)")
	}
	if o.node == "" {
		return fmt.Errorf("-role merge requires -node (this tier's name in the parent's fragments)")
	}
	if o.listen != "" {
		return fmt.Errorf("the merge tier serves its ops API on -cluster-listen; drop -listen")
	}
	if len(o.paths) > 0 {
		return fmt.Errorf("the merge tier takes no trace files; ingest nodes do the reading")
	}

	var fragDir, spoolDir string
	if o.stateDir != "" {
		fragDir = filepath.Join(o.stateDir, "fragments")
		spoolDir = filepath.Join(o.stateDir, "spool")
	}
	m, err := cluster.NewMerger(cluster.MergerConfig{
		Window:    o.window,
		Stride:    o.stride,
		Expect:    o.expect,
		Straggler: o.straggler,
		Forward: cluster.ForwarderConfig{
			URL:      o.forward,
			Node:     o.node,
			SpoolDir: spoolDir,
			Metrics:  o.reg,
			Logger:   o.logger.With("component", "forward", "node", o.node),
		},
		FragDir:  fragDir,
		FragSync: o.walSync,
		Metrics:  o.reg,
		Logger:   o.logger.With("component", "merger"),
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The merge tier keeps no campaign state; its ops API serves cluster
	// and forward counters over an empty store.
	st, err := store.Open(store.Config{})
	if err != nil {
		return err
	}
	shutdown, err := serveHTTP(ctx, o.clusterListen, serve.NewHandler(serve.Config{
		Store:      st,
		Aggregator: m,
		Node:       o.node,
		Role:       "merge",
		ForwarderStats: func() cluster.ForwarderStats {
			return m.Forwarder().Stats()
		},
		Started: time.Now(),
		Metrics: o.reg,
		Tracer:  o.tracer,
		Pprof:   o.pprofOn,
	}), o.logger.With("component", "http"))
	if err != nil {
		return err
	}
	defer shutdown()
	defer notifySignals(ctx, cancel, m.Stop, o.logger)()

	<-m.Start(ctx)
	if err := m.Err(); err != nil {
		return err
	}
	if ctx.Err() == nil {
		if err := m.CloseUpstream(ctx); err != nil {
			return err
		}
	}

	stats, fs := m.Stats(), m.Forwarder().Stats()
	if o.jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{
			"node": o.node, "nodes": stats.Nodes, "fragments": stats.Fragments,
			"lateFragments": stats.LateFragments, "duplicateFragments": stats.DuplicateFragments,
			"windows": stats.Windows, "emptyWindows": stats.EmptyWindows,
			"forwarded": fs.Forwarded, "retries": fs.Retries, "bytes": fs.Bytes,
			"spooled": fs.Spooled, "spoolDropped": fs.SpoolDropped,
		})
	}
	fmt.Fprintf(out, "merge %s: merged %d fragments from %d nodes (%d late, %d duplicate) into %d windows (%d empty); forwarded %d (%d retries, %d bytes) to %s\n",
		o.node, stats.Fragments, stats.Nodes, stats.LateFragments, stats.DuplicateFragments,
		stats.Windows, stats.EmptyWindows, fs.Forwarded, fs.Retries, fs.Bytes, o.forward)
	return nil
}
