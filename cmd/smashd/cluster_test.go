package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
)

// windowLines extracts the per-window and per-delta output lines, the
// part of smashd's text output that must be identical across a standalone
// and a cluster run.
func windowLines(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "window ") || strings.HasPrefix(line, "  ") {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// The cluster acceptance test at the CLI layer: one aggregator plus two
// self-partitioning ingest nodes (-shard-of) replaying the same trace
// produce exactly the window reports, deltas and lineage summary of a
// standalone run.
func TestRunClusterEquivalence(t *testing.T) {
	_, paths := writeWorld(t, 2)

	var std bytes.Buffer
	if err := run(context.Background(), append([]string{"-window", "24h"}, paths...), nil, &std); err != nil {
		t.Fatal(err)
	}
	wantWindows := windowLines(std.String())
	wantSummary := summaryOf(t, std.String())
	if wantWindows == "" {
		t.Fatal("standalone run produced no window lines")
	}

	addrCh := make(chan string, 1)
	onListen = func(a net.Addr) { addrCh <- a.String() }
	defer func() { onListen = nil }()

	aggErr := make(chan error, 1)
	var aggOut bytes.Buffer
	go func() {
		aggErr <- run(context.Background(), []string{
			"-role", "aggregate", "-cluster-listen", "127.0.0.1:0",
			"-expect", "2", "-window", "24h",
		}, nil, &aggOut)
	}()
	addr := <-addrCh

	// Both nodes read the FULL trace and keep only their client-hash
	// partition; together they cover every request exactly once.
	for i := 0; i < 2; i++ {
		var out bytes.Buffer
		args := append([]string{
			"-role", "ingest", "-forward", "http://" + addr,
			"-shard-of", fmt.Sprintf("%d/2", i), "-window", "24h",
		}, paths...)
		if err := run(context.Background(), args, nil, &out); err != nil {
			t.Fatalf("ingest node %d: %v", i, err)
		}
		if !strings.Contains(out.String(), "forwarded") {
			t.Errorf("node %d forwarded nothing:\n%s", i, out.String())
		}
	}
	if err := <-aggErr; err != nil {
		t.Fatalf("aggregator: %v", err)
	}

	if got := windowLines(aggOut.String()); got != wantWindows {
		t.Errorf("cluster window output diverged:\ngot:\n%s\nwant:\n%s", got, wantWindows)
	}
	if got := summaryOf(t, aggOut.String()); got != wantSummary {
		t.Errorf("cluster lineage summary diverged:\ngot:\n%s\nwant:\n%s", got, wantSummary)
	}
	if !strings.Contains(aggOut.String(), "aggregated 4 fragments from 2 nodes") {
		t.Errorf("missing aggregation stats:\n%s", aggOut.String())
	}
}

// The aggregate role emits NDJSON window records like standalone.
func TestRunClusterJSON(t *testing.T) {
	_, paths := writeWorld(t, 1)

	addrCh := make(chan string, 1)
	onListen = func(a net.Addr) { addrCh <- a.String() }
	defer func() { onListen = nil }()

	aggErr := make(chan error, 1)
	var aggOut bytes.Buffer
	go func() {
		aggErr <- run(context.Background(), []string{
			"-role", "aggregate", "-cluster-listen", "127.0.0.1:0",
			"-expect", "1", "-json", "-window", "24h",
		}, nil, &aggOut)
	}()
	addr := <-addrCh

	var nodeOut bytes.Buffer
	args := append([]string{
		"-role", "ingest", "-forward", "http://" + addr,
		"-node", "solo", "-json", "-window", "24h",
	}, paths...)
	if err := run(context.Background(), args, nil, &nodeOut); err != nil {
		t.Fatal(err)
	}
	if err := <-aggErr; err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(aggOut.String()), "\n")
	if len(lines) != 2 { // one window + trailing stats record
		t.Fatalf("aggregator JSON lines = %d:\n%s", len(lines), aggOut.String())
	}
	var rec struct {
		Window    int `json:"window"`
		Requests  int `json:"requests"`
		Campaigns int `json:"campaigns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Requests == 0 || rec.Campaigns == 0 {
		t.Errorf("degenerate aggregated window: %+v", rec)
	}
	var stats struct {
		Nodes    int `json:"nodes"`
		Windows  int `json:"windows"`
		Lineages int `json:"lineages"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 1 || stats.Windows != 1 || stats.Lineages == 0 {
		t.Errorf("degenerate aggregator stats: %+v", stats)
	}

	nodeLines := strings.Split(strings.TrimSpace(nodeOut.String()), "\n")
	var nodeStats struct {
		Node      string `json:"node"`
		Forwarded int    `json:"forwarded"`
	}
	if err := json.Unmarshal([]byte(nodeLines[len(nodeLines)-1]), &nodeStats); err != nil {
		t.Fatal(err)
	}
	if nodeStats.Node != "solo" || nodeStats.Forwarded != 2 { // window + final marker
		t.Errorf("node stats record: %+v", nodeStats)
	}
}

func TestParseShardOf(t *testing.T) {
	shard, of, err := parseShardOf("1/3")
	if err != nil || shard != 1 || of != 3 {
		t.Errorf("parseShardOf(1/3) = %d,%d,%v", shard, of, err)
	}
	for _, bad := range []string{"", "2", "a/b", "-1/2", "2/2", "3/2", "1/0"} {
		if _, _, err := parseShardOf(bad); err == nil {
			t.Errorf("parseShardOf(%q) accepted", bad)
		}
	}
}

func TestClusterRoleValidation(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-role", "bogus"},
		{"-role", "ingest"}, // missing -forward
		{"-role", "ingest", "-forward", "http://x", "-shard-of", "9/2"},                  // bad shard
		{"-role", "ingest", "-forward", "http://x"},                                      // missing -node
		{"-role", "aggregate"},                                                           // missing -cluster-listen
		{"-role", "aggregate", "-cluster-listen", ":0"},                                  // missing -expect
		{"-role", "aggregate", "-cluster-listen", ":0", "-expect", "1", "-listen", ":0"}, // double listen
		{"-role", "aggregate", "-cluster-listen", ":0", "-expect", "1", "x.tsv"},         // stray files
		{"-role", "merge"},                                                                  // missing -cluster-listen
		{"-role", "merge", "-cluster-listen", ":0"},                                         // missing -expect
		{"-role", "merge", "-cluster-listen", ":0", "-expect", "1"},                         // missing -forward
		{"-role", "merge", "-cluster-listen", ":0", "-expect", "1", "-forward", "http://x"}, // missing -node
	}
	for _, args := range cases {
		if err := run(context.Background(), args, strings.NewReader(""), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
