package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The daemon's observability plane end-to-end: latency histograms and the
// watermark-lag gauge on /metrics, a window lifecycle trace at
// /v1/windows/{seq}/trace, pprof absent without -pprof, structured JSON
// diagnostics on stderr-equivalent, and -trace-log NDJSON spans on disk.
func TestRunObservabilityEndpoints(t *testing.T) {
	_, paths := writeWorld(t, 2)
	day1, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	day2, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}

	traceLog := filepath.Join(t.TempDir(), "spans.ndjson")
	addrCh := make(chan string, 1)
	onListen = func(a net.Addr) { addrCh <- a.String() }
	defer func() { onListen = nil }()

	pr, pw := io.Pipe()
	runErr := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		runErr <- run(context.Background(), []string{
			"-window", "24h", "-listen", "127.0.0.1:0",
			"-log-format", "json", "-log-level", "debug",
			"-trace-log", traceLog,
		}, pr, &out)
	}()

	// Day 2's events push the watermark past day 1's window, so window 0
	// seals, detects and commits while the stream is still live.
	if _, err := pw.Write(append(day1, day2...)); err != nil {
		t.Fatal(err)
	}
	addr := <-addrCh

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// Wait for window 0's trace to materialize. Spans are appended as the
	// window moves through its lifecycle, so poll until the final commit
	// phase — the store append — shows up.
	deadline := time.Now().Add(30 * time.Second)
	var traceBody string
	for time.Now().Before(deadline) {
		if code, body := get("/v1/windows/0/trace"); code == http.StatusOK && strings.Contains(body, `"store"`) {
			traceBody = body
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if traceBody == "" {
		t.Fatal("window 0 trace never reached the store phase")
	}
	var wt struct {
		Window int64 `json:"window"`
		Spans  []struct {
			Phase string `json:"phase"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(traceBody), &wt); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, traceBody)
	}
	phases := map[string]bool{}
	for _, s := range wt.Spans {
		phases[s.Phase] = true
	}
	for _, want := range []string{"seal", "detect", "store"} {
		if !phases[want] {
			t.Errorf("trace missing %q span: %s", want, traceBody)
		}
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -pprof: status %d, want 404", code)
	}

	_, metrics := get("/metrics")
	for _, want := range []string{
		"smash_ingest_seal_seconds_bucket",
		"smash_seal_commit_seconds_count",
		"smash_window_detect_seconds_count",
		"smash_sink_consume_seconds_count",
		"smash_watermark_lag_seconds",
		"smash_go_goroutines",
		"smash_store_windows_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	pw.Close()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}

	// -trace-log: every line is one JSON span with window and phase.
	data, err := os.ReadFile(traceLog)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace log has %d spans, want at least 4:\n%s", len(lines), data)
	}
	logged := map[string]bool{}
	for _, ln := range lines {
		var span struct {
			Window *int64 `json:"window"`
			Phase  string `json:"phase"`
		}
		if err := json.Unmarshal([]byte(ln), &span); err != nil {
			t.Fatalf("bad NDJSON span: %v\n%s", err, ln)
		}
		if span.Window == nil || span.Phase == "" {
			t.Fatalf("span missing window or phase: %s", ln)
		}
		logged[span.Phase] = true
	}
	for _, want := range []string{"seal", "detect", "store"} {
		if !logged[want] {
			t.Errorf("trace log missing %q span", want)
		}
	}
}

// Bad -log-level and -log-format values fail fast.
func TestRunLogFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-log-level", "chatty"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad -log-level accepted")
	}
	if err := run(context.Background(), []string{"-log-format", "xml"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad -log-format accepted")
	}
}
