package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smash/internal/source"
	"smash/internal/synth"
	"smash/internal/trace"
)

// pushContentType maps format names onto the /v1/ingest Content-Types
// the push tests use.
var pushContentType = map[string]string{
	"combined": "text/x-combined-log",
	"jsonl":    "application/x-ndjson",
}

// renderDays projects a world's days through a format, returning the
// per-day access-log payloads, the paths of the projected-TSV replay
// baseline, and the total event count.
func renderDays(t *testing.T, f source.Format, days []*trace.Trace) (logs []string, tsvPaths []string, total int) {
	t.Helper()
	dir := t.TempDir()
	for i, day := range days {
		proj := &trace.Trace{Name: day.Name}
		var sb strings.Builder
		var buf []byte
		for j := range day.Requests {
			r := f.Project(day.Requests[j])
			proj.Requests = append(proj.Requests, r)
			buf = f.Append(buf[:0], &r)
			sb.Write(buf)
			sb.WriteByte('\n')
		}
		total += len(day.Requests)
		logs = append(logs, sb.String())
		p := filepath.Join(dir, fmt.Sprintf("day%d.tsv", i+1))
		file, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteTrace(file, proj); err != nil {
			t.Fatal(err)
		}
		if err := file.Close(); err != nil {
			t.Fatal(err)
		}
		tsvPaths = append(tsvPaths, p)
	}
	return logs, tsvPaths, total
}

// runTail runs smashd -follow over a live log, appending the first
// day's second half mid-run, rotating the file between days, and
// stopping the tailer once every event is ingested.
func runTail(t *testing.T, format string, logs []string, total int) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")

	// Seed the file with roughly half of day 1; the rest arrives live.
	day1 := logs[0]
	half := strings.Index(day1[len(day1)/2:], "\n") + len(day1)/2 + 1
	if err := os.WriteFile(path, []byte(day1[:half]), 0o644); err != nil {
		t.Fatal(err)
	}

	optCh := make(chan *options, 1)
	onSource = func(o *options) { optCh <- o }
	defer func() { onSource = nil }()

	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(context.Background(),
			[]string{"-window", "24h", "-format", format, "-follow", path}, nil, &out)
	}()
	var o *options
	select {
	case o = <-optCh:
	case err := <-errCh:
		t.Fatalf("run exited before opening the source: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the source to open")
	}

	lines := func() int64 { return o.srcCtrs[0].Stats().Lines }
	waitLines := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for lines() < n {
			if time.Now().After(deadline) {
				t.Fatalf("tailer ingested %d lines; want %d", lines(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Live growth: the second half of day 1 lands while the tailer runs.
	appendTo(t, path, day1[half:])
	n1 := int64(strings.Count(day1, "\n"))
	waitLines(n1)

	// Rotation: logrotate renames the live file and day 2 starts fresh.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(logs[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	waitLines(int64(total))
	if rot := o.srcCtrs[0].Stats().Rotations; rot != 1 {
		t.Errorf("rotations = %d; want 1", rot)
	}

	o.tailer.Stop()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("tail run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tail run did not finish after Stop")
	}
	return out.String()
}

// runPush runs smashd -push and POSTs the days as raw-event batches to
// /v1/ingest, closing the stream with ?eos=1.
func runPush(t *testing.T, ctype string, logs []string) string {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(context.Background(),
			[]string{"-window", "24h", "-push", "-listen", "127.0.0.1:0"}, nil, &out)
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}
	url := fmt.Sprintf("http://%s/v1/ingest", addr)

	post := func(body, query string) {
		t.Helper()
		resp, err := http.Post(url+query, ctype, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			var msg bytes.Buffer
			msg.ReadFrom(resp.Body)
			t.Fatalf("POST /v1/ingest = %d: %s", resp.StatusCode, msg.String())
		}
	}
	// Each day ships as a couple of batches — a shipper posting as it
	// goes, not one giant upload.
	for _, day := range logs {
		half := strings.Index(day[len(day)/2:], "\n") + len(day)/2 + 1
		post(day[:half], "")
		post(day[half:], "")
	}
	post("", "?eos=1")

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("push run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("push run did not finish after eos")
	}
	return out.String()
}

func appendTo(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestEquivalence is the subsystem's acceptance bar: the same
// traffic delivered three ways — projected-TSV replay, a live tailed
// access log with a mid-run rotation, and HTTP push batches — produces
// byte-identical window output and lineage summaries.
func TestIngestEquivalence(t *testing.T) {
	world, err := synth.Generate(synth.Config{
		Name: "equiv", Seed: 9, Days: 2,
		Clients: 250, BenignServers: 600, MeanRequests: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"combined", "jsonl"} {
		t.Run(format, func(t *testing.T) {
			f, err := source.New(format, source.Options{})
			if err != nil {
				t.Fatal(err)
			}
			logs, tsvPaths, total := renderDays(t, f, world.Days)

			var baseline bytes.Buffer
			args := append([]string{"-window", "24h"}, tsvPaths...)
			if err := run(context.Background(), args, nil, &baseline); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(baseline.String(), "appear") {
				t.Fatalf("baseline replay detected nothing:\n%s", baseline.String())
			}

			if got := runTail(t, format, logs, total); got != baseline.String() {
				t.Errorf("-follow output diverged from TSV replay:\n--- replay ---\n%s\n--- tail ---\n%s",
					summaryOf(t, baseline.String()), summaryOf(t, got))
			}
			if got := runPush(t, pushContentType[format], logs); got != baseline.String() {
				t.Errorf("push output diverged from TSV replay:\n--- replay ---\n%s\n--- push ---\n%s",
					summaryOf(t, baseline.String()), summaryOf(t, got))
			}
		})
	}
}

// Source flag validation: the wiring errors a user would hit first.
func TestSourceFlagValidation(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.log")
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-format", "xml", p},         // unknown format
		{"-follow"},                   // -follow without a file
		{"-follow", p, p},             // -follow with two files
		{"-push", p},                  // -push without -listen
		{"-jsonl-map", "nonsense", p}, // bad mapping syntax
		{"-format", "jsonl", "-jsonl-map", "bogus=key", p}, // unknown field
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, strings.NewReader(""), &out); err == nil {
			t.Errorf("run(%v) succeeded; want a usage error", args)
		}
	}
}
