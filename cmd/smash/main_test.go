package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smash/internal/synth"
	"smash/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		Name: "clitest", Seed: 9, Days: 1,
		Clients: 250, BenignServers: 600, MeanRequests: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "day.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, w.Trace()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "inferred") {
		t.Errorf("missing summary line:\n%s", text)
	}
	if !strings.Contains(text, "campaign") {
		t.Errorf("no campaigns printed:\n%s", text)
	}
	if !strings.Contains(text, "score=") {
		t.Errorf("-v did not print member scores:\n%s", text)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist"}, &out); err == nil {
		t.Error("nonexistent trace accepted")
	}
	if err := run([]string{"-wat"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var summary map[string]any
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := summary["campaigns"]; !ok {
		t.Error("JSON missing campaigns key")
	}
	if _, ok := summary["preprocess"]; !ok {
		t.Error("JSON missing preprocess key")
	}
}
