package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smash/internal/synth"
	"smash/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func writeTestTrace(t *testing.T) string {
	t.Helper()
	w, err := synth.Generate(synth.Config{
		Name: "clitest", Seed: 9, Days: 1,
		Clients: 250, BenignServers: 600, MeanRequests: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "day.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, w.Trace()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trace", path, "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "inferred") {
		t.Errorf("missing summary line:\n%s", text)
	}
	if !strings.Contains(text, "campaign") {
		t.Errorf("no campaigns printed:\n%s", text)
	}
	if !strings.Contains(text, "score=") {
		t.Errorf("-v did not print member scores:\n%s", text)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run(context.Background(), []string{"-trace", "/does/not/exist"}, &out); err == nil {
		t.Error("nonexistent trace accepted")
	}
	if err := run(context.Background(), []string{"-wat"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunJSONGolden locks the -json output shape for downstream tooling:
// the handcrafted testdata/campaign.tsv trace (four servers sharing five
// clients, one URI file and one IP — score 1.0 across two secondary
// dimensions) must render exactly testdata/report.golden.json. Regenerate
// with `go test ./cmd/smash -run Golden -update` after a deliberate
// format change.
func TestRunJSONGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trace", "testdata/campaign.tsv", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output diverged from golden file\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}
	for _, server := range []string{"evil-a.test", "evil-b.test", "evil-c.test", "evil-d.test"} {
		if !strings.Contains(out.String(), server) {
			t.Errorf("campaign server %s missing from JSON output", server)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trace", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var summary map[string]any
	if err := json.Unmarshal(out.Bytes(), &summary); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := summary["campaigns"]; !ok {
		t.Error("JSON missing campaigns key")
	}
	if _, ok := summary["preprocess"]; !ok {
		t.Error("JSON missing preprocess key")
	}
}
