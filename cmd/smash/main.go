// Command smash runs the SMASH pipeline over an HTTP trace file (the TSV
// format produced by cmd/tracegen or an ISP flow-log export) and prints the
// inferred malicious campaigns.
//
// Usage:
//
//	smash -trace day1.tsv [-threshold 0.8] [-single-threshold 1.0]
//	      [-idf 200] [-seed 1] [-probe] [-v]
//
// Without -probe the pruning stage runs passively (referrer evidence only);
// with it, redirection chains and liveness are checked with live HTTP HEAD
// requests.
//
// SIGINT/SIGTERM cancel the run: the pipeline aborts at its next stage
// boundary (inside mining, at the next dimension) and smash exits with the
// context error. -v additionally logs per-stage wall-clock timings to
// stderr through a core.LogObserver.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"smash/internal/core"
	"smash/internal/trace"
	"smash/internal/webprobe"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smash:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smash", flag.ContinueOnError)
	var (
		tracePath    = fs.String("trace", "", "trace file to analyze (required)")
		threshold    = fs.Float64("threshold", 0.8, "inference threshold for multi-client campaigns")
		singleThresh = fs.Float64("single-threshold", 1.0, "inference threshold for single-client campaigns")
		idf          = fs.Int("idf", 200, "IDF popularity filter threshold")
		seed         = fs.Int64("seed", 1, "community detection seed")
		probe        = fs.Bool("probe", false, "probe inferred servers over live HTTP (redirection chains, liveness)")
		verbose      = fs.Bool("v", false, "print every campaign member")
		jsonOut      = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		return fmt.Errorf("read trace: %w", err)
	}

	opts := []core.Option{
		core.WithSeed(*seed),
		core.WithThreshold(*threshold),
		core.WithSingleClientThreshold(*singleThresh),
		core.WithIDFThreshold(*idf),
	}
	if *probe {
		opts = append(opts, core.WithProber(&webprobe.HTTPProber{}))
	}
	if *verbose {
		opts = append(opts, core.WithObserver(&core.LogObserver{W: os.Stderr, Prefix: "smash: "}))
	}
	report, err := core.New(opts...).RunContext(ctx, tr)
	if err != nil {
		return err
	}
	if *jsonOut {
		return report.WriteJSON(out)
	}

	fmt.Fprintln(out, report.TraceStats.Render())
	fmt.Fprintln(out, report.Preprocess.Render())
	fmt.Fprintf(out, "main herds: %d; secondary herds: %v; prune: %+v\n",
		report.MainHerds, report.SecondaryHerds, report.PruneStats)
	fmt.Fprintf(out, "inferred %d multi-client and %d single-client campaigns\n",
		len(report.Campaigns), len(report.SingleClientCampaigns))
	for _, c := range report.AllCampaigns() {
		fmt.Fprintln(out, " ", c.Render())
		if *verbose {
			for _, s := range c.Servers {
				score := 0.0
				dims := []string(nil)
				if sc := report.Scores[s]; sc != nil {
					score, dims = sc.Score, sc.Dimensions
				}
				fmt.Fprintf(out, "    %-30s score=%.2f dims=%v\n", s, score, dims)
			}
		}
	}
	return nil
}
